//! The PerfXplain explanation-generation algorithm (Algorithm 1 of the
//! paper).
//!
//! Given a bound PXQL query and an execution log, the generator
//!
//! 1. collects the pairs related to the query and draws a class-balanced
//!    sample of them (`crate::training`),
//! 2. grows the because clause greedily, one atomic predicate at a time: for
//!    every feature it finds the candidate predicate with the highest
//!    information gain that *holds for the pair of interest*
//!    (applicability), then scores the per-feature winners by a
//!    percentile-normalised weighted average of precision and generality
//!    (`w = 0.8`) and appends the best one,
//! 3. optionally generates a despite-clause extension with the exact same
//!    machinery, except that the target class is "performed as expected"
//!    (maximising relevance instead of precision).

use crate::bridge::DatasetBridge;
use crate::cancel::CancelToken;
use crate::columnar::ColumnarLog;
use crate::config::ExplainConfig;
use crate::error::Result;
use crate::explanation::Explanation;
use crate::pairs::{PairCatalog, PairExample};
use crate::query::BoundQuery;
use crate::record::ExecutionLog;
use crate::service::XplainService;
use crate::training::{
    prepare_encoded_training_cancellable, prepare_encoded_training_in, EncodedTraining, TrainingSet,
};
use mlcore::{
    best_split_for_attribute_filtered, percentile_ranks, SplitCandidate, PARALLEL_SPLIT_MIN_CELLS,
};
use pxql::{Atom, Predicate};
use std::sync::Arc;

/// The PerfXplain explanation generator.
#[derive(Debug, Clone, Default)]
pub struct PerfXplain {
    config: ExplainConfig,
}

impl PerfXplain {
    /// Creates a generator with the given configuration.
    pub fn new(config: ExplainConfig) -> Self {
        PerfXplain { config }
    }

    /// Creates a generator with the paper's default configuration.
    pub fn with_defaults() -> Self {
        PerfXplain::default()
    }

    /// The generator's configuration.
    pub fn config(&self) -> &ExplainConfig {
        &self.config
    }

    /// The pair-feature catalog available at the configured feature level.
    fn pair_catalog(&self, log: &ExecutionLog, query: &BoundQuery) -> PairCatalog {
        PairCatalog::from_raw(log.catalog(query.kind))
            .restrict_to_groups(self.config.feature_level.allowed_groups())
    }

    /// Encodes the split-search dataset straight from an encoded training
    /// set (one pass, no pair-feature maps).
    fn encode_bridge(&self, training: &EncodedTraining<'_>, query: &BoundQuery) -> DatasetBridge {
        let catalog = self.pair_catalog(training.log(), query);
        let excluded = crate::query::excluded_raw_features(query, &self.config);
        let poi = training
            .poi_rows(query)
            .expect("pair-of-interest rows exist after verify_preconditions");
        DatasetBridge::encode_from_view(
            training,
            poi,
            &catalog,
            &excluded,
            self.config.sim_threshold,
        )
    }

    /// Generates an explanation for the query: a because clause of the
    /// configured width, in the context of the user's own despite clause.
    ///
    /// This is the stateless convenience API: it answers through a
    /// single-shot [`XplainService`], so the service and this method share
    /// exactly one code path ([`PerfXplain::explain_in`]).  Applications
    /// posing repeated queries against the same log should hold a
    /// long-lived [`XplainService`] instead, which caches the columnar
    /// encoding across calls.
    pub fn explain(&self, log: &ExecutionLog, query: &BoundQuery) -> Result<Explanation> {
        XplainService::answer_once(self, log, query, false).map(|outcome| outcome.explanation)
    }

    /// Like [`PerfXplain::explain`], but against an already-encoded columnar
    /// view of the log — the zero-re-encoding path every cached
    /// [`XplainService`] query goes through.
    pub fn explain_in(
        &self,
        log: &ExecutionLog,
        view: Arc<ColumnarLog>,
        query: &BoundQuery,
    ) -> Result<Explanation> {
        self.explain_with_training(log, view, query, false, false, &CancelToken::never(), None)
            .map(|(explanation, _, _)| explanation)
    }

    /// The shared explanation pipeline: verify, train, grow the because
    /// clause (optionally extending the despite clause first), and hand the
    /// final training set back so callers (assessment, despite metrics) can
    /// reuse it instead of re-enumerating the pairs.  Callers that already
    /// verified the query's preconditions (the single-shot service pass
    /// checks them *before* paying for an encoding) pass
    /// `preconditions_verified = true` to skip the re-check — precondition
    /// verification derives the full pair-feature map of the pair of
    /// interest, which is not free.
    ///
    /// `cancel` is checked cooperatively at the pipeline's phase boundaries
    /// — before work starts, per batch of the pair enumeration, and per
    /// clause-growing iteration — so a networked caller's deadline or abort
    /// surfaces as [`CoreError::Cancelled`](crate::CoreError::Cancelled) /
    /// [`CoreError::DeadlineExceeded`](crate::CoreError::DeadlineExceeded)
    /// within one phase of firing.
    ///
    /// `cost_probe`, when given, fires exactly once with the actual related
    /// pair count right after the first pair enumeration — the moment the
    /// real workload becomes known — so admission control can refine the
    /// request's charged cost mid-flight.
    #[allow(clippy::too_many_arguments)] // internal seam: service + stateless engine share it
    pub(crate) fn explain_with_training<'a>(
        &self,
        log: &'a ExecutionLog,
        view: Arc<ColumnarLog>,
        query: &BoundQuery,
        extend_despite: bool,
        preconditions_verified: bool,
        cancel: &CancelToken,
        cost_probe: Option<&crate::service::CostProbe>,
    ) -> Result<(Explanation, BoundQuery, EncodedTraining<'a>)> {
        cancel.check()?;
        if !preconditions_verified {
            query.verify_preconditions(log, self.config.sim_threshold)?;
        }
        let training =
            prepare_encoded_training_cancellable(log, view.clone(), query, &self.config, cancel)?;
        if let Some(probe) = cost_probe {
            probe.fire(training.related_pairs as u64);
        }

        if extend_despite {
            // Relevance of the empty extension over the sample: the fraction
            // of pairs that performed as expected.  Below the threshold the
            // despite clause is extended and the training set regenerated in
            // the narrower context — on the same view, which only changes
            // the compiled predicates, not the encoding.
            let base_relevance = training.num_expected() as f64 / training.len().max(1) as f64;
            if base_relevance < self.config.relevance_threshold {
                let bridge = self.encode_bridge(&training, query);
                let extension = self.generate_clause_cancellable(
                    &bridge,
                    false,
                    self.config.despite_width,
                    cancel,
                )?;
                let mut extended = query.clone();
                extended.query = extended
                    .query
                    .clone()
                    .with_despite(query.query.despite.conjoin(&extension));
                let extended_training = prepare_encoded_training_cancellable(
                    log,
                    view,
                    &extended,
                    &self.config,
                    cancel,
                )?;
                let extended_bridge = self.encode_bridge(&extended_training, &extended);
                let because = self.generate_clause_cancellable(
                    &extended_bridge,
                    true,
                    self.config.width,
                    cancel,
                )?;
                return Ok((
                    Explanation::new(extension, because),
                    extended,
                    extended_training,
                ));
            }
        }

        let bridge = self.encode_bridge(&training, query);
        let because = self.generate_clause_cancellable(&bridge, true, self.config.width, cancel)?;
        Ok((Explanation::because_only(because), query.clone(), training))
    }

    /// Generates a despite-clause extension `des'` for the query using the
    /// same algorithm with relevance as the target (Section 4.2, "Generating
    /// the des' clause").
    pub fn generate_despite(&self, log: &ExecutionLog, query: &BoundQuery) -> Result<Predicate> {
        let view = Arc::new(ColumnarLog::build_auto(log, query.kind));
        self.generate_despite_in(log, view, query)
    }

    /// Like [`PerfXplain::generate_despite`], but against an
    /// already-encoded columnar view.
    pub fn generate_despite_in(
        &self,
        log: &ExecutionLog,
        view: Arc<ColumnarLog>,
        query: &BoundQuery,
    ) -> Result<Predicate> {
        query.verify_preconditions(log, self.config.sim_threshold)?;
        let training = prepare_encoded_training_in(log, view, query, &self.config)?;
        let bridge = self.encode_bridge(&training, query);
        Ok(self.generate_clause_from_bridge(&bridge, false, self.config.despite_width))
    }

    /// Generates a full explanation, automatically extending the despite
    /// clause when the user's clause scores below the configured relevance
    /// threshold, and then generating the because clause in the context of
    /// the extended clause.
    ///
    /// Returns the explanation together with the (possibly extended) query
    /// that was ultimately explained.  Like [`PerfXplain::explain`], this is
    /// a single-shot [`XplainService`] call under the hood.
    pub fn explain_full(
        &self,
        log: &ExecutionLog,
        query: &BoundQuery,
    ) -> Result<(Explanation, BoundQuery)> {
        XplainService::answer_once(self, log, query, true)
            .map(|outcome| (outcome.explanation, outcome.query))
    }

    /// Like [`PerfXplain::explain_full`], but against an already-encoded
    /// columnar view of the log.
    pub fn explain_full_in(
        &self,
        log: &ExecutionLog,
        view: Arc<ColumnarLog>,
        query: &BoundQuery,
    ) -> Result<(Explanation, BoundQuery)> {
        self.explain_with_training(log, view, query, true, false, &CancelToken::never(), None)
            .map(|(explanation, effective, _)| (explanation, effective))
    }

    /// Generates the because clause from an already-materialised training
    /// set (the map-based path; the engine's own entry points encode from
    /// the columnar view instead).
    pub fn because_from_training(
        &self,
        set: &TrainingSet,
        poi: &PairExample,
        log: &ExecutionLog,
        query: &BoundQuery,
    ) -> Predicate {
        self.generate_clause(set, poi, log, query, true, self.config.width)
    }

    /// Generates a despite-clause extension from an already-materialised
    /// training set.
    pub fn despite_from_training(
        &self,
        set: &TrainingSet,
        poi: &PairExample,
        log: &ExecutionLog,
        query: &BoundQuery,
    ) -> Predicate {
        self.generate_clause(set, poi, log, query, false, self.config.despite_width)
    }

    /// Map-based clause generation: encodes the training set through
    /// [`DatasetBridge::build`] and runs the shared greedy loop.
    fn generate_clause(
        &self,
        set: &TrainingSet,
        poi: &PairExample,
        log: &ExecutionLog,
        query: &BoundQuery,
        target_observed: bool,
        width: usize,
    ) -> Predicate {
        if set.is_empty() || width == 0 {
            return Predicate::always_true();
        }
        let catalog = self.pair_catalog(log, query);
        let excluded = crate::query::excluded_raw_features(query, &self.config);
        let bridge = DatasetBridge::build(set, poi, &catalog, &excluded);
        self.generate_clause_from_bridge(&bridge, target_observed, width)
    }

    /// The greedy clause-growing loop shared by because and despite
    /// generation (lines 5–17 of Algorithm 1).  `target_observed` selects
    /// the class whose probability the clause maximises: `true` for the
    /// because clause (precision), `false` for the despite clause
    /// (relevance).
    fn generate_clause_from_bridge(
        &self,
        bridge: &DatasetBridge,
        target_observed: bool,
        width: usize,
    ) -> Predicate {
        self.generate_clause_cancellable(bridge, target_observed, width, &CancelToken::never())
            .expect("the never token cannot cancel clause generation")
    }

    /// [`PerfXplain::generate_clause_from_bridge`] with a cancellation
    /// check per clause-growing iteration (each iteration sweeps every
    /// attribute over the surviving pairs — the natural batch size).
    fn generate_clause_cancellable(
        &self,
        bridge: &DatasetBridge,
        target_observed: bool,
        width: usize,
        cancel: &CancelToken,
    ) -> Result<Predicate> {
        let dataset = bridge.dataset();
        if dataset.is_empty() || width == 0 {
            return Ok(Predicate::always_true());
        }

        let mut atoms: Vec<Atom> = Vec::new();
        let mut current: Vec<usize> = (0..dataset.len()).collect();

        for _ in 0..width {
            cancel.check()?;
            if current.is_empty() {
                break;
            }
            // Line 5 of Algorithm 1: the best (applicable) predicate for
            // every feature.  Each attribute's search is an independent
            // single-sort sweep with the applicability filter threaded
            // through it, so on large nodes the per-attribute searches fan
            // out over scoped threads; results are collected in attribute
            // order either way, keeping the scored candidate list (and
            // therefore the percentile normalisation below) bit-identical
            // to the serial loop.
            let attrs: Vec<usize> = (0..bridge.num_attributes())
                .filter(|&attr| {
                    !bridge.poi_value(attr).is_missing()
                        && !atoms.iter().any(|a| a.feature == bridge.attr_name(attr))
                })
                .collect();
            let search = |attr: usize| {
                let poi_value = bridge.poi_value(attr);
                best_split_for_attribute_filtered(dataset, &current, attr, |atom| {
                    atom.matches_value(poi_value)
                })
                .map(|candidate| (attr, candidate))
            };
            let per_attr: Vec<Option<(usize, SplitCandidate)>> = crate::shard::map_chunks_gated(
                &attrs,
                current.len().saturating_mul(attrs.len()),
                PARALLEL_SPLIT_MIN_CELLS,
                |chunk| chunk.iter().map(|&attr| search(attr)).collect(),
            );
            let candidates: Vec<(usize, SplitCandidate)> = per_attr.into_iter().flatten().collect();
            if candidates.is_empty() {
                break;
            }

            // Lines 6–14: precision and generality of every candidate over
            // the pairs satisfying the clause built so far, percentile
            // normalisation, weighted score.
            let precisions: Vec<f64> = candidates
                .iter()
                .map(|(_, c)| {
                    let total = c.inside.total() as f64;
                    let hits = if target_observed {
                        c.inside.positive as f64
                    } else {
                        c.inside.negative as f64
                    };
                    if total == 0.0 {
                        0.0
                    } else {
                        hits / total
                    }
                })
                .collect();
            let generalities: Vec<f64> = candidates
                .iter()
                .map(|(_, c)| c.inside.total() as f64 / current.len() as f64)
                .collect();
            let (precision_scores, generality_scores) = if self.config.normalize_scores {
                (
                    percentile_ranks(&precisions),
                    percentile_ranks(&generalities),
                )
            } else {
                (precisions.clone(), generalities.clone())
            };

            let w = self.config.precision_weight;
            let mut best_index = 0usize;
            let mut best_score = f64::MIN;
            for i in 0..candidates.len() {
                let score = w * precision_scores[i] + (1.0 - w) * generality_scores[i];
                let better = score > best_score + 1e-12
                    || ((score - best_score).abs() <= 1e-12
                        && precisions[i] > precisions[best_index]);
                if better {
                    best_score = score;
                    best_index = i;
                }
            }

            // Lines 15–17: extend the clause and keep only the pairs that
            // satisfy it.
            let (_, winner) = &candidates[best_index];
            let atom = bridge.atom_to_pxql(&winner.atom);
            current.retain(|&row| winner.atom.matches_row(dataset, row));
            atoms.push(atom);
        }

        Ok(Predicate::from_atoms(atoms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use crate::query::BoundQuery;
    use crate::record::ExecutionRecord;
    use crate::training::prepare_training_set;
    use pxql::{parse_query, Value};

    /// A synthetic log reproducing the motivating scenario: pairs where one
    /// job reads much more data than the other have similar durations
    /// exactly when the block size is large and the cluster is big.
    fn block_size_log(n: usize) -> ExecutionLog {
        let mut log = ExecutionLog::new();
        for i in 0..n {
            let big_blocks = i % 2 == 0;
            let big_cluster = i % 3 != 0;
            let input: f64 = if i % 4 < 2 { 32.0e9 } else { 1.0e9 };
            let blocksize = if big_blocks { 1024.0 } else { 64.0 };
            let instances = if big_cluster { 150.0 } else { 4.0 };
            // Jobs bottlenecked by per-block time when blocks are large and
            // the cluster has spare capacity; otherwise runtime scales with
            // input size and inversely with the cluster size.
            let duration = if big_blocks && big_cluster {
                600.0
            } else {
                input / (instances * 2.0e7)
            };
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("inputsize", input)
                    .with_feature("blocksize", blocksize)
                    .with_feature("numinstances", instances)
                    .with_feature("iosortfactor", 10.0 + (i % 3) as f64)
                    .with_feature("duration", duration),
            );
        }
        log.rebuild_catalogs();
        log
    }

    fn same_duration_query(log: &ExecutionLog) -> BoundQuery {
        // Find a pair of interest: larger input, similar duration.
        let q = parse_query(
            "DESPITE inputsize_compare = GT\n\
             OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap();
        // job_4 (32 GB, big blocks, big cluster, 600 s) vs job_2 (1 GB, big
        // blocks, big cluster, 600 s).
        let _ = log;
        BoundQuery::new(q, "job_4", "job_2")
    }

    #[test]
    fn finds_the_block_size_explanation() {
        let log = block_size_log(40);
        let query = same_duration_query(&log);
        let engine = PerfXplain::new(ExplainConfig::default().with_width(2).with_seed(3));
        let explanation = engine.explain(&log, &query).unwrap();

        // The because clause must be applicable to the pair of interest.
        let poi = query.verify_preconditions(&log, 0.1).unwrap();
        assert!(explanation.is_applicable(&poi));
        assert!(explanation.width() >= 1);

        // The explanation should be about the block size and/or the cluster
        // size — the two features that actually drive the behaviour — and
        // must never mention the duration itself.
        let mentioned: Vec<&str> = explanation.because.features();
        assert!(
            mentioned.iter().all(|f| !f.starts_with("duration")),
            "circular explanation: {mentioned:?}"
        );
        assert!(
            mentioned
                .iter()
                .any(|f| f.starts_with("blocksize") || f.starts_with("numinstances")),
            "unexpected explanation: {}",
            explanation.because
        );
    }

    #[test]
    fn explanation_has_high_precision_on_training_pairs() {
        let log = block_size_log(40);
        let query = same_duration_query(&log);
        let config = ExplainConfig::default().with_width(3).with_seed(1);
        let engine = PerfXplain::new(config.clone());
        let explanation = engine.explain(&log, &query).unwrap();

        let set = prepare_training_set(&log, &query, &config).unwrap();
        let quality = metrics::assess(&set, &explanation);
        assert!(
            quality.precision.unwrap_or(0.0) > 0.9,
            "precision = {:?}",
            quality.precision
        );
        assert!(quality.generality.unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn width_zero_yields_trivial_clause() {
        let log = block_size_log(24);
        let query = same_duration_query(&log);
        let engine = PerfXplain::new(ExplainConfig::default().with_width(0));
        let explanation = engine.explain(&log, &query).unwrap();
        assert!(explanation.because.is_trivial());
    }

    #[test]
    fn wider_explanations_beat_the_empty_explanation() {
        let log = block_size_log(40);
        let query = same_duration_query(&log);
        let config = ExplainConfig::default().with_seed(5);
        let set = prepare_training_set(&log, &query, &config).unwrap();

        // Precision of the empty explanation is the base rate P(obs | des).
        let baseline = metrics::precision(&set, &Explanation::default()).unwrap_or(0.0);
        for width in 1..=3 {
            let engine = PerfXplain::new(config.clone().with_width(width));
            let explanation = engine.explain(&log, &query).unwrap();
            let precision = metrics::precision(&set, &explanation).unwrap_or(0.0);
            assert!(
                precision >= baseline,
                "width-{width} precision {precision} fell below the base rate {baseline}"
            );
        }
    }

    #[test]
    fn generated_despite_clause_raises_relevance() {
        let log = block_size_log(40);
        // Under-specified query: no despite clause at all.
        let q = parse_query(
            "OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap();
        let query = BoundQuery::new(q, "job_4", "job_2");
        let config = ExplainConfig::default().with_seed(11);
        let engine = PerfXplain::new(config.clone());

        let set = prepare_training_set(&log, &query, &config).unwrap();
        let baseline = metrics::relevance(&set, &Predicate::always_true()).unwrap_or(0.0);
        let despite = engine.generate_despite(&log, &query).unwrap();
        let improved = metrics::relevance(&set, &despite).unwrap_or(0.0);
        assert!(
            improved >= baseline,
            "relevance did not improve: {baseline} -> {improved}"
        );
        // The generated clause must hold for the pair of interest.
        let poi = query.verify_preconditions(&log, 0.1).unwrap();
        assert!(despite.eval(&poi));
    }

    #[test]
    fn explain_full_extends_underspecified_queries() {
        let log = block_size_log(40);
        let q = parse_query(
            "OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap();
        let query = BoundQuery::new(q, "job_4", "job_2");
        let engine = PerfXplain::new(ExplainConfig::default().with_seed(13));
        let (explanation, extended) = engine.explain_full(&log, &query).unwrap();
        // The base rate of "expected" pairs is well below the threshold, so
        // a despite extension must have been generated and folded in.
        assert!(!explanation.despite.is_trivial());
        assert!(extended.query.despite.width() >= explanation.despite.width());
        let poi = query.verify_preconditions(&log, 0.1).unwrap();
        assert!(explanation.is_applicable(&poi));
    }

    #[test]
    fn level1_features_restrict_the_vocabulary() {
        let log = block_size_log(40);
        let query = same_duration_query(&log);
        let engine = PerfXplain::new(
            ExplainConfig::default()
                .with_feature_level(crate::levels::FeatureLevel::Level1)
                .with_width(3),
        );
        let explanation = engine.explain(&log, &query).unwrap();
        for atom in explanation.because.atoms() {
            assert!(
                atom.feature.ends_with("_isSame"),
                "level-1 explanation used {}",
                atom.feature
            );
            assert!(matches!(atom.constant, Value::Bool(_) | Value::Str(_)));
        }
    }

    #[test]
    fn precondition_violations_are_reported() {
        let log = block_size_log(24);
        // job_2 vs job_0 violates the despite clause (inputsize LT, not GT).
        let q = parse_query(
            "DESPITE inputsize_compare = GT\n\
             OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap();
        let query = BoundQuery::new(q, "job_2", "job_0");
        let engine = PerfXplain::with_defaults();
        assert!(engine.explain(&log, &query).is_err());
    }
}
