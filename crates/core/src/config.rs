//! Configuration of the explanation engine.

use crate::levels::FeatureLevel;
use serde::{Deserialize, Serialize};

/// Tunables of PerfXplain and the baseline techniques.  The defaults are the
/// values the paper reports using.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainConfig {
    /// Width of the because clause (number of atomic predicates).
    pub width: usize,
    /// Width of an automatically generated despite clause (Section 6.4 uses
    /// width 3).
    pub despite_width: usize,
    /// Weight of precision vs. generality in the predicate score
    /// (`w = 0.8` in the paper, "thus favoring precision over generality").
    pub precision_weight: f64,
    /// Target size of the balanced training sample (2000 in the paper).
    pub sample_size: usize,
    /// Similarity band of the `compare` features (10% in the paper).
    pub sim_threshold: f64,
    /// Feature level available to the generator (Section 6.8); level 3 by
    /// default.
    pub feature_level: FeatureLevel,
    /// Raw features that must never appear in generated clauses, in addition
    /// to the features mentioned by the query's OBSERVED/EXPECTED clauses
    /// (which are always excluded to avoid circular explanations).
    ///
    /// By default the wall-clock bookkeeping features are excluded: a job's
    /// `finish_time` is `submit_time + duration`, so explaining a duration
    /// difference with a finish-time difference would be circular in
    /// disguise (the paper makes the related point that a `start_time`
    /// explanation can be perfectly precise yet useless).
    pub excluded_raw_features: Vec<String>,
    /// Upper bound on the number of candidate pairs enumerated from the log
    /// before classification; larger logs are subsampled deterministically.
    pub max_candidate_pairs: usize,
    /// Similarity threshold `s` of the SimButDiff baseline (0.9 in the
    /// paper).
    pub simbutdiff_similarity: f64,
    /// Number of Relief iterations used by the RuleOfThumb baseline.
    pub relief_iterations: usize,
    /// Relevance threshold `r`: when the user's despite clause scores below
    /// this, PerfXplain extends it automatically.
    pub relevance_threshold: f64,
    /// Whether per-iteration precision/generality scores are replaced by
    /// their percentile ranks before the weighted combination
    /// (`normalizeScore` in Algorithm 1).  The paper added this step after
    /// observing that raw generality scores were too small to matter;
    /// disabling it reproduces that earlier behaviour for the ablation
    /// benchmarks.
    pub normalize_scores: bool,
    /// Whether the training sample is class-balanced (Section 4.3).  When
    /// disabled, a uniform sample of the related pairs is used instead —
    /// the ablation the paper motivates with the "99% observed pairs make
    /// the empty explanation look good" argument.
    pub balanced_sampling: bool,
    /// Seed for all randomised steps (sampling, subsampling), making
    /// explanation generation reproducible.
    pub seed: u64,
}

impl Default for ExplainConfig {
    fn default() -> Self {
        ExplainConfig {
            width: 3,
            despite_width: 3,
            precision_weight: 0.8,
            sample_size: 2000,
            sim_threshold: crate::pairs::DEFAULT_SIM_THRESHOLD,
            feature_level: FeatureLevel::Level3,
            excluded_raw_features: vec![
                "submit_time".to_string(),
                "launch_time".to_string(),
                "finish_time".to_string(),
                "start_time".to_string(),
            ],
            max_candidate_pairs: 250_000,
            simbutdiff_similarity: 0.9,
            relief_iterations: 200,
            relevance_threshold: 0.8,
            normalize_scores: true,
            balanced_sampling: true,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl ExplainConfig {
    /// Builder-style setter for the explanation width.
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = width;
        self
    }

    /// Builder-style setter for the feature level.
    pub fn with_feature_level(mut self, level: FeatureLevel) -> Self {
        self.feature_level = level;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the balanced-sample size.
    pub fn with_sample_size(mut self, sample_size: usize) -> Self {
        self.sample_size = sample_size;
        self
    }

    /// Builder-style setter for the precision weight `w`.
    pub fn with_precision_weight(mut self, weight: f64) -> Self {
        self.precision_weight = weight;
        self
    }

    /// Builder-style setter for the score-normalisation ablation switch.
    pub fn with_normalize_scores(mut self, normalize: bool) -> Self {
        self.normalize_scores = normalize;
        self
    }

    /// Builder-style setter for the balanced-sampling ablation switch.
    pub fn with_balanced_sampling(mut self, balanced: bool) -> Self {
        self.balanced_sampling = balanced;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let config = ExplainConfig::default();
        assert_eq!(config.width, 3);
        assert_eq!(config.sample_size, 2000);
        assert!((config.precision_weight - 0.8).abs() < 1e-12);
        assert!((config.sim_threshold - 0.10).abs() < 1e-12);
        assert!((config.simbutdiff_similarity - 0.9).abs() < 1e-12);
        assert_eq!(config.feature_level, FeatureLevel::Level3);
        assert!(config.normalize_scores);
        assert!(config.balanced_sampling);
    }

    #[test]
    fn ablation_builders() {
        let config = ExplainConfig::default()
            .with_precision_weight(0.5)
            .with_normalize_scores(false)
            .with_balanced_sampling(false);
        assert!((config.precision_weight - 0.5).abs() < 1e-12);
        assert!(!config.normalize_scores);
        assert!(!config.balanced_sampling);
    }

    #[test]
    fn builders_override_fields() {
        let config = ExplainConfig::default()
            .with_width(5)
            .with_feature_level(FeatureLevel::Level1)
            .with_seed(42)
            .with_sample_size(100);
        assert_eq!(config.width, 5);
        assert_eq!(config.feature_level, FeatureLevel::Level1);
        assert_eq!(config.seed, 42);
        assert_eq!(config.sample_size, 100);
    }
}
