//! Construction of training examples from the execution log.
//!
//! `constructTrainingExamples` (line 1 of Algorithm 1) turns the log into
//! the set of pairs *related* to the query: pairs that satisfy the despite
//! clause and either the observed or the expected clause.  The pairs that
//! performed as observed become positive examples, the pairs that performed
//! as expected become negative ones.  `sample` (line 2) then draws a
//! class-balanced sample so that explanation generation stays fast and is
//! not misled by skewed class frequencies.
//!
//! Enumerating every ordered pair of a large log is quadratic, so the
//! builder applies two optimisations that do not change the result
//! semantics:
//!
//! * **Blocking** — when the despite clause contains `f_isSame = T` for a
//!   nominal raw feature (e.g. `jobid_isSame = T` for task queries), only
//!   pairs within the same group can possibly be related, so only those are
//!   enumerated.
//! * **Capping** — if the candidate space is still larger than
//!   `max_candidate_pairs`, a deterministic random subset is used.

use crate::config::ExplainConfig;
use crate::error::{CoreError, Result};
use crate::features::FeatureKind;
use crate::pairs::{parse_pair_feature, PairExample, PairFeatureGroup};
use crate::query::{BoundQuery, PairLabel};
use crate::record::{ExecutionLog, ExecutionRecord};
use mlcore::balanced_sample;
use pxql::{Op, Value};
use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A class-balanced, fully materialised set of training pairs.
#[derive(Debug, Clone, Default)]
pub struct TrainingSet {
    /// The training pairs with their full pair-feature maps.
    pub examples: Vec<PairExample>,
    /// `true` for pairs that performed as observed (positive class).
    pub labels: Vec<bool>,
}

impl TrainingSet {
    /// Number of training pairs.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Number of pairs that performed as observed.
    pub fn num_observed(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Number of pairs that performed as expected.
    pub fn num_expected(&self) -> usize {
        self.len() - self.num_observed()
    }

    /// Iterates over `(example, performed_as_observed)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&PairExample, bool)> {
        self.examples.iter().zip(self.labels.iter().copied())
    }
}

/// A related candidate pair before materialisation: indices into the record
/// list plus its label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelatedPair {
    /// Index of the first execution in the per-kind record list.
    pub left: usize,
    /// Index of the second execution.
    pub right: usize,
    /// Observed or expected.
    pub label: PairLabel,
}

/// Finds a blocking key in the despite clause: a `f_isSame = T` atom whose
/// raw feature is nominal.  Pairs disagreeing on that raw feature can never
/// satisfy the despite clause, so enumeration can be restricted to groups of
/// records sharing the raw value.
fn blocking_feature<'a>(query: &'a BoundQuery, log: &ExecutionLog) -> Option<&'a str> {
    let catalog = log.catalog(query.kind);
    for atom in query.query.despite.atoms() {
        if atom.op != Op::Eq {
            continue;
        }
        let wants_true = match &atom.constant {
            Value::Bool(b) => *b,
            Value::Str(s) => s.eq_ignore_ascii_case("T") || s.eq_ignore_ascii_case("true"),
            _ => false,
        };
        if !wants_true {
            continue;
        }
        let (raw, group) = parse_pair_feature(&atom.feature);
        if group == PairFeatureGroup::IsSame && catalog.kind(raw) == Some(FeatureKind::Nominal) {
            return Some(raw);
        }
    }
    None
}

/// Enumerates and classifies the pairs of the log that are related to the
/// query.  Returns the per-kind record list alongside the related pairs so
/// that callers can materialise features later.
pub fn collect_related_pairs<'a>(
    log: &'a ExecutionLog,
    query: &BoundQuery,
    config: &ExplainConfig,
) -> (Vec<&'a ExecutionRecord>, Vec<RelatedPair>) {
    let records: Vec<&ExecutionRecord> = log.of_kind(query.kind).collect();
    let n = records.len();
    if n < 2 {
        return (records, Vec::new());
    }

    // Candidate index pairs, possibly blocked by a shared nominal value.
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    if let Some(block_feature) = blocking_feature(query, log) {
        let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, record) in records.iter().enumerate() {
            let key = record.feature(block_feature).to_string();
            if key != "NULL" {
                groups.entry(key).or_default().push(i);
            }
        }
        for members in groups.values() {
            for &i in members {
                for &j in members {
                    if i != j {
                        candidates.push((i, j));
                    }
                }
            }
        }
    } else {
        candidates.reserve(n * (n - 1));
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    candidates.push((i, j));
                }
            }
        }
    }

    // Cap the candidate space deterministically.
    if candidates.len() > config.max_candidate_pairs {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xC0FFEE);
        let keep_probability = config.max_candidate_pairs as f64 / candidates.len() as f64;
        candidates.retain(|_| rng.random::<f64>() < keep_probability);
    }

    let catalog = log.catalog(query.kind);
    let needed = query.mentioned_features();
    let mut related = Vec::new();
    for (i, j) in candidates {
        let features = crate::pairs::compute_selected_pair_features(
            catalog,
            records[i],
            records[j],
            config.sim_threshold,
            &needed,
        );
        let label = query.classify(&features);
        if label.is_related() {
            related.push(RelatedPair {
                left: i,
                right: j,
                label,
            });
        }
    }
    (records, related)
}

/// Draws the balanced sample of Section 4.3 and materialises the full pair
/// features of the selected pairs.
pub fn build_training_set(
    log: &ExecutionLog,
    query: &BoundQuery,
    records: &[&ExecutionRecord],
    related: &[RelatedPair],
    config: &ExplainConfig,
) -> Result<TrainingSet> {
    let observed = related
        .iter()
        .filter(|p| p.label == PairLabel::Observed)
        .count();
    let expected = related.len() - observed;
    if observed == 0 || expected == 0 {
        return Err(CoreError::NotEnoughTrainingPairs { observed, expected });
    }

    let labels: Vec<bool> = related.iter().map(|p| p.label == PairLabel::Observed).collect();
    let selected: Vec<usize> = if config.balanced_sampling {
        balanced_sample(&labels, config.sample_size, config.seed).0
    } else {
        // Ablation: a uniform sample of the related pairs, keeping the
        // original class skew.
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xBA1A);
        let keep = (config.sample_size as f64 / labels.len() as f64).min(1.0);
        (0..labels.len())
            .filter(|_| keep >= 1.0 || rng.random::<f64>() < keep)
            .collect()
    };

    let catalog = log.catalog(query.kind);
    let mut set = TrainingSet::default();
    for index in selected {
        let pair = &related[index];
        set.examples.push(PairExample::build(
            catalog,
            records[pair.left],
            records[pair.right],
            config.sim_threshold,
        ));
        set.labels.push(pair.label == PairLabel::Observed);
    }
    if set.num_observed() == 0 || set.num_expected() == 0 {
        return Err(CoreError::NotEnoughTrainingPairs {
            observed: set.num_observed(),
            expected: set.num_expected(),
        });
    }
    Ok(set)
}

/// Convenience: enumerate, classify, sample and materialise in one call.
pub fn prepare_training_set(
    log: &ExecutionLog,
    query: &BoundQuery,
    config: &ExplainConfig,
) -> Result<TrainingSet> {
    let (records, related) = collect_related_pairs(log, query, config);
    build_training_set(log, query, &records, &related, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ExecutionRecord;
    use pxql::parse_query;

    /// A synthetic log where half the job pairs with larger input have the
    /// same duration (because block size is large) and half behave as
    /// expected (bigger input takes longer).
    fn synthetic_log() -> ExecutionLog {
        let mut log = ExecutionLog::new();
        for i in 0..30 {
            let big_blocks = i % 2 == 0;
            let input = if i % 3 == 0 { 32.0e9 } else { 1.0e9 };
            // Jobs with big blocks finish in ~600s regardless of input size;
            // small-block jobs scale with input.
            let duration = if big_blocks { 600.0 } else { input / 5.0e7 };
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("inputsize", input)
                    .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                    .with_feature("pigscript", if i % 5 == 0 { "a.pig" } else { "b.pig" })
                    .with_feature("duration", duration),
            );
        }
        log.rebuild_catalogs();
        log
    }

    fn query() -> BoundQuery {
        let q = parse_query(
            "DESPITE inputsize_compare = GT\n\
             OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap();
        BoundQuery::new(q, "job_0", "job_1")
    }

    #[test]
    fn related_pairs_have_both_labels() {
        let log = synthetic_log();
        let config = ExplainConfig::default();
        let (records, related) = collect_related_pairs(&log, &query(), &config);
        assert_eq!(records.len(), 30);
        assert!(!related.is_empty());
        assert!(related.iter().any(|p| p.label == PairLabel::Observed));
        assert!(related.iter().any(|p| p.label == PairLabel::Expected));
        // Only pairs with strictly greater input size are related.
        for pair in &related {
            let left = records[pair.left].feature("inputsize").as_num().unwrap();
            let right = records[pair.right].feature("inputsize").as_num().unwrap();
            assert!(left > right);
        }
    }

    #[test]
    fn training_set_is_materialised_and_balanced() {
        let log = synthetic_log();
        let config = ExplainConfig::default().with_sample_size(60);
        let set = prepare_training_set(&log, &query(), &config).unwrap();
        assert!(!set.is_empty());
        assert!(set.num_observed() > 0);
        assert!(set.num_expected() > 0);
        // Full pair features are available.
        assert!(set.examples[0].features.contains_key("blocksize_isSame"));
        assert!(set.examples[0].features.contains_key("blocksize_compare"));
        assert_eq!(set.iter().count(), set.len());
    }

    #[test]
    fn capping_limits_candidate_pairs() {
        let log = synthetic_log();
        let config = ExplainConfig {
            max_candidate_pairs: 50,
            ..ExplainConfig::default()
        };
        let (_, related) = collect_related_pairs(&log, &query(), &config);
        // 30 jobs -> 870 ordered pairs before capping; far fewer after.
        assert!(related.len() <= 60, "related = {}", related.len());
    }

    #[test]
    fn blocking_restricts_to_matching_groups() {
        let log = synthetic_log();
        let q = parse_query(
            "DESPITE pigscript_isSame = T\n\
             OBSERVED duration_compare = GT\n\
             EXPECTED duration_compare = SIM",
        )
        .unwrap();
        let bound = BoundQuery::new(q, "job_0", "job_5");
        assert_eq!(blocking_feature(&bound, &log), Some("pigscript"));
        let config = ExplainConfig::default();
        let (records, related) = collect_related_pairs(&log, &bound, &config);
        for pair in &related {
            assert_eq!(
                records[pair.left].feature("pigscript"),
                records[pair.right].feature("pigscript")
            );
        }
    }

    #[test]
    fn single_class_fails_with_descriptive_error() {
        // All jobs identical: no pair can perform "as observed".
        let mut log = ExecutionLog::new();
        for i in 0..5 {
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("inputsize", 1.0e9)
                    .with_feature("duration", 100.0),
            );
        }
        log.rebuild_catalogs();
        let err = prepare_training_set(&log, &query(), &ExplainConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::NotEnoughTrainingPairs { .. }));
    }

    #[test]
    fn tiny_log_yields_no_pairs() {
        let mut log = ExecutionLog::new();
        log.push(ExecutionRecord::job("only").with_feature("duration", 1.0));
        log.rebuild_catalogs();
        let (_, related) = collect_related_pairs(&log, &query(), &ExplainConfig::default());
        assert!(related.is_empty());
    }
}
