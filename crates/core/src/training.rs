//! Construction of training examples from the execution log.
//!
//! `constructTrainingExamples` (line 1 of Algorithm 1) turns the log into
//! the set of pairs *related* to the query: pairs that satisfy the despite
//! clause and either the observed or the expected clause.  The pairs that
//! performed as observed become positive examples, the pairs that performed
//! as expected become negative ones.  `sample` (line 2) then draws a
//! class-balanced sample so that explanation generation stays fast and is
//! not misled by skewed class frequencies.
//!
//! Enumerating every ordered pair of a large log is quadratic, so the
//! builder applies two optimisations that do not change the result
//! semantics:
//!
//! * **Blocking** — when the despite clause contains `f_isSame = T` for a
//!   nominal raw feature (e.g. `jobid_isSame = T` for task queries), only
//!   pairs within the same group can possibly be related, so only those are
//!   enumerated.
//! * **Capping** — if the candidate space is still larger than
//!   `max_candidate_pairs`, a deterministic subset is kept, decided by a
//!   stateless per-candidate hash so that enumeration order (and therefore
//!   parallelism) cannot change the outcome.
//!
//! The enumeration itself is **streaming**: candidates are classified
//! against a [`CompiledQuery`] as they are produced, so memory stays
//! proportional to the *related* pairs (bounded by the cap), never to the
//! O(n²) candidate space.  On multi-core machines the outer record loop is
//! fanned out over `std::thread::scope` threads **by default** once the
//! plan enumerates at least as many candidates as an unblocked
//! [`PARALLEL_ENUMERATION_THRESHOLD`]-record log (below that — including
//! blocked queries whose groups shrink the candidate space — thread setup
//! costs more than the whole scan); the `parallel` feature forces the
//! fan-out on regardless of size and the `serial` feature forces it off.
//! Results are bit-identical either way.

use crate::cancel::CancelToken;
use crate::columnar::{ColumnarLog, CompiledQuery};
use crate::config::ExplainConfig;
use crate::error::{CoreError, Result};
use crate::features::FeatureKind;
use crate::pairs::{parse_pair_feature, PairExample, PairFeatureGroup};
use crate::query::{BoundQuery, PairLabel};
use crate::record::{ExecutionLog, ExecutionRecord};
use mlcore::{balanced_sample, AttrValue};
use pxql::{Op, Value};
use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A class-balanced, fully materialised set of training pairs.
#[derive(Debug, Clone, Default)]
pub struct TrainingSet {
    /// The training pairs with their full pair-feature maps.
    pub examples: Vec<PairExample>,
    /// `true` for pairs that performed as observed (positive class).
    pub labels: Vec<bool>,
}

impl TrainingSet {
    /// Number of training pairs.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Number of pairs that performed as observed.
    pub fn num_observed(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Number of pairs that performed as expected.
    pub fn num_expected(&self) -> usize {
        self.len() - self.num_observed()
    }

    /// Iterates over `(example, performed_as_observed)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&PairExample, bool)> {
        self.examples.iter().zip(self.labels.iter().copied())
    }
}

/// A related candidate pair before materialisation: indices into the record
/// list plus its label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelatedPair {
    /// Index of the first execution in the per-kind record list.
    pub left: usize,
    /// Index of the second execution.
    pub right: usize,
    /// Observed or expected.
    pub label: PairLabel,
}

/// Finds a blocking key in the despite clause: a `f_isSame = T` atom whose
/// raw feature is nominal.  Pairs disagreeing on that raw feature can never
/// satisfy the despite clause, so enumeration can be restricted to groups of
/// records sharing the raw value.
fn blocking_feature<'a>(query: &'a BoundQuery, log: &ExecutionLog) -> Option<&'a str> {
    let catalog = log.catalog(query.kind);
    for atom in query.query.despite.atoms() {
        if atom.op != Op::Eq {
            continue;
        }
        let wants_true = match &atom.constant {
            Value::Bool(b) => *b,
            Value::Str(s) => s.eq_ignore_ascii_case("T") || s.eq_ignore_ascii_case("true"),
            _ => false,
        };
        if !wants_true {
            continue;
        }
        let (raw, group) = parse_pair_feature(&atom.feature);
        if group == PairFeatureGroup::IsSame && catalog.kind(raw) == Some(FeatureKind::Nominal) {
            return Some(raw);
        }
    }
    None
}

/// The candidate enumeration plan: either every ordered pair, or only the
/// ordered pairs within blocking groups.
enum CandidatePlan {
    /// All `n·(n-1)` ordered pairs.
    All { n: usize },
    /// Ordered pairs within each group (blocking).
    Blocked { groups: Vec<Vec<usize>> },
}

impl CandidatePlan {
    /// Builds the plan for a query over a view, applying blocking when the
    /// despite clause allows it.
    fn build(view: &ColumnarLog, query: &BoundQuery, log: &ExecutionLog) -> CandidatePlan {
        let n = view.num_rows();
        let Some(block_feature) = blocking_feature(query, log) else {
            return CandidatePlan::All { n };
        };
        let Some(col) = view.column_of(block_feature) else {
            return CandidatePlan::All { n };
        };
        // Group rows by the blocking feature's canonical text, exactly as
        // the map-based path grouped by `Value::to_string()`; rows with a
        // missing value can never satisfy `f_isSame = T` and are dropped.
        let mut key_cache: Vec<Option<String>> = Vec::new();
        let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for row in 0..n {
            let key = match view.cell(row, col) {
                AttrValue::Missing => continue,
                AttrValue::Num(v) => Value::Num(v).to_string(),
                AttrValue::Nom(id) => {
                    let id = id as usize;
                    if id >= key_cache.len() {
                        key_cache.resize(id + 1, None);
                    }
                    key_cache[id]
                        .get_or_insert_with(|| view.original(col, id as u32).to_string())
                        .clone()
                }
            };
            groups.entry(key).or_default().push(row);
        }
        CandidatePlan::Blocked {
            groups: groups.into_values().collect(),
        }
    }

    /// Total number of candidates the plan enumerates.
    fn total(&self) -> u64 {
        match self {
            CandidatePlan::All { n } => (*n as u64) * (n.saturating_sub(1) as u64),
            CandidatePlan::Blocked { groups } => groups
                .iter()
                .map(|g| (g.len() as u64) * (g.len().saturating_sub(1) as u64))
                .sum(),
        }
    }

    /// Flattens the plan into outer units: one unit per left-hand row, with
    /// the ordinal of its first candidate.  Units are enumerated in the
    /// exact order the eager path used.
    fn units(&self) -> Vec<OuterUnit> {
        let mut units = Vec::new();
        let mut base = 0u64;
        match self {
            CandidatePlan::All { n } => {
                for left in 0..*n {
                    units.push(OuterUnit {
                        left,
                        group: None,
                        base,
                    });
                    base += n.saturating_sub(1) as u64;
                }
            }
            CandidatePlan::Blocked { groups } => {
                for (g, members) in groups.iter().enumerate() {
                    for (position, &left) in members.iter().enumerate() {
                        units.push(OuterUnit {
                            left,
                            group: Some((g, position)),
                            base,
                        });
                        base += members.len().saturating_sub(1) as u64;
                    }
                }
            }
        }
        units
    }
}

/// One outer-loop unit: a left-hand row plus the ordinal of its first
/// candidate pair.
struct OuterUnit {
    left: usize,
    /// `(group index, position of `left` within the group)` for blocked
    /// plans.
    group: Option<(usize, usize)>,
    base: u64,
}

/// Record count at or above which the streaming enumeration of an
/// *unblocked* query fans its outer loop out over threads by default.  At
/// 256 records the candidate space is ~65k pairs (≈1 ms of
/// classification), comfortably above the ~100 µs a `std::thread::scope`
/// setup costs, so the fan-out pays for itself; below it the serial scan
/// wins.  `cargo bench --bench pairs_pipeline` records this choice in
/// `BENCH_pairs.json`.
pub const PARALLEL_ENUMERATION_THRESHOLD: usize = 256;

/// The candidate-count form of [`PARALLEL_ENUMERATION_THRESHOLD`]: the
/// number of ordered pairs a threshold-sized unblocked log enumerates.
/// The auto gate compares against the *actual* plan total, so a blocked
/// query whose groups shrink the candidate space (however many records the
/// log holds) stays serial instead of paying thread setup for microseconds
/// of work.
const PARALLEL_ENUMERATION_MIN_CANDIDATES: u64 =
    (PARALLEL_ENUMERATION_THRESHOLD as u64) * (PARALLEL_ENUMERATION_THRESHOLD as u64 - 1);

/// Whether the outer enumeration loop should fan out for a plan enumerating
/// `total_candidates` pairs: the `serial` feature forces it off, the
/// `parallel` feature forces it on, and the default auto mode enables it at
/// [`PARALLEL_ENUMERATION_MIN_CANDIDATES`] candidates.
fn fan_out_enabled(total_candidates: u64) -> bool {
    if cfg!(feature = "serial") {
        false
    } else if cfg!(feature = "parallel") {
        true
    } else {
        total_candidates >= PARALLEL_ENUMERATION_MIN_CANDIDATES
    }
}

/// SplitMix64 finaliser: a stateless, well-mixed hash of a candidate
/// ordinal, used for order-independent capping decisions.
fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform f64 in [0, 1).
fn unit_f64(hash: u64) -> f64 {
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Classifies the candidates of one outer unit, appending related pairs.
fn scan_unit(
    unit: &OuterUnit,
    plan: &CandidatePlan,
    view: &ColumnarLog,
    compiled: &CompiledQuery,
    keep: Option<(u64, f64)>,
    out: &mut Vec<RelatedPair>,
) {
    let mut classify = |left: usize, right: usize, ordinal: u64| {
        if let Some((seed_mix, probability)) = keep {
            if unit_f64(mix64(seed_mix ^ ordinal)) >= probability {
                return;
            }
        }
        let label = compiled.classify(view, left, right);
        if label.is_related() {
            out.push(RelatedPair { left, right, label });
        }
    };
    match (unit.group, plan) {
        (None, _) => {
            let n = view.num_rows();
            for right in 0..n {
                if right == unit.left {
                    continue;
                }
                let offset = if right < unit.left { right } else { right - 1 };
                classify(unit.left, right, unit.base + offset as u64);
            }
        }
        (Some((g, position)), CandidatePlan::Blocked { groups }) => {
            for (other, &right) in groups[g].iter().enumerate() {
                if other == position {
                    continue;
                }
                let offset = if other < position { other } else { other - 1 };
                classify(unit.left, right, unit.base + offset as u64);
            }
        }
        (Some(_), CandidatePlan::All { .. }) => unreachable!("blocked unit in an All plan"),
    }
}

/// Outer units scanned between two cancellation checks.  A unit classifies
/// up to n candidates, so at 512 units the check amortises to well under a
/// nanosecond per candidate while an expired deadline still stops a large
/// enumeration within milliseconds.
const CANCEL_CHECK_UNITS: usize = 512;

/// Enumerates and classifies the related pairs of an encoded view without
/// materialising the candidate space: memory stays proportional to the
/// related pairs (bounded by `max_candidate_pairs`), never O(n²).
pub fn collect_related_pairs_in(
    view: &ColumnarLog,
    query: &BoundQuery,
    log: &ExecutionLog,
    config: &ExplainConfig,
) -> Vec<RelatedPair> {
    collect_related_pairs_cancellable(view, query, log, config, &CancelToken::never())
        .expect("the never token cannot cancel the enumeration")
}

/// [`collect_related_pairs_in`] with a cooperative cancellation token,
/// checked every [`CANCEL_CHECK_UNITS`] outer units (per fan-out thread when
/// the scan is parallel).  On cancellation the partial result is discarded
/// and the token's error comes back.
pub fn collect_related_pairs_cancellable(
    view: &ColumnarLog,
    query: &BoundQuery,
    log: &ExecutionLog,
    config: &ExplainConfig,
    cancel: &CancelToken,
) -> Result<Vec<RelatedPair>> {
    cancel.check()?;
    if view.num_rows() < 2 {
        return Ok(Vec::new());
    }
    let compiled = CompiledQuery::compile(query, view, config.sim_threshold);
    let plan = CandidatePlan::build(view, query, log);
    let total = plan.total();
    let keep = (total > config.max_candidate_pairs as u64).then(|| {
        (
            config.seed ^ 0xC0FFEE,
            config.max_candidate_pairs as f64 / total as f64,
        )
    });
    let units = plan.units();

    let scan_units = |chunk: &[OuterUnit]| -> Result<Vec<RelatedPair>> {
        let mut out = Vec::new();
        for (index, unit) in chunk.iter().enumerate() {
            if index % CANCEL_CHECK_UNITS == 0 {
                cancel.check()?;
            }
            scan_unit(unit, &plan, view, &compiled, keep, &mut out);
        }
        Ok(out)
    };

    let threads = crate::shard::hardware_threads();
    if threads > 1 && !units.is_empty() && fan_out_enabled(total) {
        let chunks = crate::shard::map_chunks(&units, threads, scan_units);
        let mut related = Vec::new();
        for chunk in chunks {
            related.extend(chunk?);
        }
        return Ok(related);
    }

    scan_units(&units)
}

/// Enumerates and classifies the pairs of the log that are related to the
/// query.  Returns the per-kind record list alongside the related pairs so
/// that callers can materialise features later.
///
/// This encodes a fresh columnar view of the log; callers that already hold
/// a [`ColumnarLog`] should use [`collect_related_pairs_in`] to avoid the
/// re-encoding.
pub fn collect_related_pairs<'a>(
    log: &'a ExecutionLog,
    query: &BoundQuery,
    config: &ExplainConfig,
) -> (Vec<&'a ExecutionRecord>, Vec<RelatedPair>) {
    let view = ColumnarLog::build_auto(log, query.kind);
    let related = collect_related_pairs_in(&view, query, log, config);
    // The view encodes `of_kind` records in iteration order, so the borrowed
    // record list aligns with the pair indices.
    (log.of_kind(query.kind).collect(), related)
}

/// Draws the class-balanced (or ablation uniform) sample over the related
/// pairs, returning the selected indices into `related`.
fn sample_related(related: &[RelatedPair], config: &ExplainConfig) -> Result<Vec<usize>> {
    let observed = related
        .iter()
        .filter(|p| p.label == PairLabel::Observed)
        .count();
    let expected = related.len() - observed;
    if observed == 0 || expected == 0 {
        return Err(CoreError::NotEnoughTrainingPairs { observed, expected });
    }

    let labels: Vec<bool> = related
        .iter()
        .map(|p| p.label == PairLabel::Observed)
        .collect();
    let selected: Vec<usize> = if config.balanced_sampling {
        balanced_sample(&labels, config.sample_size, config.seed).0
    } else {
        // Ablation: a uniform sample of the related pairs, keeping the
        // original class skew.
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xBA1A);
        let keep = (config.sample_size as f64 / labels.len() as f64).min(1.0);
        (0..labels.len())
            .filter(|_| keep >= 1.0 || rng.random::<f64>() < keep)
            .collect()
    };
    Ok(selected)
}

/// Draws the balanced sample of Section 4.3 and materialises the full pair
/// features of the selected pairs.
pub fn build_training_set(
    log: &ExecutionLog,
    query: &BoundQuery,
    records: &[&ExecutionRecord],
    related: &[RelatedPair],
    config: &ExplainConfig,
) -> Result<TrainingSet> {
    let selected = sample_related(related, config)?;
    let catalog = log.catalog(query.kind);
    let mut set = TrainingSet::default();
    for index in selected {
        let pair = &related[index];
        set.examples.push(PairExample::build(
            catalog,
            records[pair.left],
            records[pair.right],
            config.sim_threshold,
        ));
        set.labels.push(pair.label == PairLabel::Observed);
    }
    if set.num_observed() == 0 || set.num_expected() == 0 {
        return Err(CoreError::NotEnoughTrainingPairs {
            observed: set.num_observed(),
            expected: set.num_expected(),
        });
    }
    Ok(set)
}

/// Convenience: enumerate, classify, sample and materialise in one call.
pub fn prepare_training_set(
    log: &ExecutionLog,
    query: &BoundQuery,
    config: &ExplainConfig,
) -> Result<TrainingSet> {
    let (records, related) = collect_related_pairs(log, query, config);
    build_training_set(log, query, &records, &related, config)
}

/// A sampled training set kept in encoded (row index) form: the columnar
/// view plus the sampled `(left row, right row)` pairs and their labels.
/// The explanation engine consumes this directly — pair features of the
/// sampled pairs are encoded straight into the split-search dataset, and
/// [`PairExample`]s are only materialised at the API boundary.
///
/// The view is held behind an [`Arc`] so that a cached encoding (e.g. one
/// owned by [`XplainService`](crate::service::XplainService)) can feed many
/// training sets — across repeated queries and across threads — without
/// ever being rebuilt or copied.
#[derive(Debug, Clone)]
pub struct EncodedTraining<'a> {
    log: &'a ExecutionLog,
    /// The columnar encoded view the pairs index into.
    pub view: Arc<ColumnarLog>,
    /// Sampled `(left, right)` row pairs, in selection order.
    pub pairs: Vec<(usize, usize)>,
    /// `true` for pairs that performed as observed.
    pub labels: Vec<bool>,
    /// Total related pairs found by the enumeration, before sampling — the
    /// actual (not estimated) candidate workload, used to refine admission
    /// costs after the fact.
    pub related_pairs: usize,
}

impl<'a> EncodedTraining<'a> {
    /// Number of sampled pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of pairs that performed as observed.
    pub fn num_observed(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Number of pairs that performed as expected.
    pub fn num_expected(&self) -> usize {
        self.len() - self.num_observed()
    }

    /// The log this training set was drawn from.
    pub fn log(&self) -> &'a ExecutionLog {
        self.log
    }

    /// Rows of the query's pair of interest in the encoded view, or `None`
    /// when either execution id is absent from the view.  Always `Some` for
    /// a query that passed `verify_preconditions` against the same log
    /// generation.
    pub fn poi_rows(&self, query: &BoundQuery) -> Option<(usize, usize)> {
        Some((
            self.view.row_of(&query.left_id)?,
            self.view.row_of(&query.right_id)?,
        ))
    }

    /// Materialises the sampled pairs as [`PairExample`]s (the API /
    /// narration boundary representation).
    pub fn materialise(&self, sim_threshold: f64) -> TrainingSet {
        let catalog = self.log.catalog(self.view.kind());
        let mut set = TrainingSet::default();
        for (&(left, right), &label) in self.pairs.iter().zip(&self.labels) {
            set.examples.push(PairExample::build(
                catalog,
                self.view.record(left),
                self.view.record(right),
                sim_threshold,
            ));
            set.labels.push(label);
        }
        set
    }
}

/// Enumerates, classifies and samples the related pairs of the log, keeping
/// everything in encoded form.  One encoding pass over the log, no pair
/// feature maps.
pub fn prepare_encoded_training<'a>(
    log: &'a ExecutionLog,
    query: &BoundQuery,
    config: &ExplainConfig,
) -> Result<EncodedTraining<'a>> {
    let view = Arc::new(ColumnarLog::build_auto(log, query.kind));
    prepare_encoded_training_in(log, view, query, config)
}

/// Like [`prepare_encoded_training`], but reuses an already-encoded view —
/// the zero-re-encoding path for repeated queries over the same log (the
/// despite-extension pass of `explain_full`, and every query answered by a
/// [`XplainService`](crate::service::XplainService) cache hit).
pub fn prepare_encoded_training_in<'a>(
    log: &'a ExecutionLog,
    view: Arc<ColumnarLog>,
    query: &BoundQuery,
    config: &ExplainConfig,
) -> Result<EncodedTraining<'a>> {
    prepare_encoded_training_cancellable(log, view, query, config, &CancelToken::never())
}

/// [`prepare_encoded_training_in`] with a cooperative cancellation token
/// threaded into the pair enumeration (the dominant cost of training-set
/// construction on large logs).
pub fn prepare_encoded_training_cancellable<'a>(
    log: &'a ExecutionLog,
    view: Arc<ColumnarLog>,
    query: &BoundQuery,
    config: &ExplainConfig,
    cancel: &CancelToken,
) -> Result<EncodedTraining<'a>> {
    let related = collect_related_pairs_cancellable(&view, query, log, config, cancel)?;
    let related_pairs = related.len();
    let selected = sample_related(&related, config)?;
    let mut pairs = Vec::with_capacity(selected.len());
    let mut labels = Vec::with_capacity(selected.len());
    for index in selected {
        let pair = &related[index];
        pairs.push((pair.left, pair.right));
        labels.push(pair.label == PairLabel::Observed);
    }
    let observed = labels.iter().filter(|&&l| l).count();
    if observed == 0 || observed == labels.len() {
        return Err(CoreError::NotEnoughTrainingPairs {
            observed,
            expected: labels.len() - observed,
        });
    }
    Ok(EncodedTraining {
        log,
        view,
        pairs,
        labels,
        related_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ExecutionRecord;
    use pxql::parse_query;

    /// A synthetic log where half the job pairs with larger input have the
    /// same duration (because block size is large) and half behave as
    /// expected (bigger input takes longer).
    fn synthetic_log() -> ExecutionLog {
        let mut log = ExecutionLog::new();
        for i in 0..30 {
            let big_blocks = i % 2 == 0;
            let input = if i % 3 == 0 { 32.0e9 } else { 1.0e9 };
            // Jobs with big blocks finish in ~600s regardless of input size;
            // small-block jobs scale with input.
            let duration = if big_blocks { 600.0 } else { input / 5.0e7 };
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("inputsize", input)
                    .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                    .with_feature("pigscript", if i % 5 == 0 { "a.pig" } else { "b.pig" })
                    .with_feature("duration", duration),
            );
        }
        log.rebuild_catalogs();
        log
    }

    fn query() -> BoundQuery {
        let q = parse_query(
            "DESPITE inputsize_compare = GT\n\
             OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap();
        BoundQuery::new(q, "job_0", "job_1")
    }

    #[test]
    fn related_pairs_have_both_labels() {
        let log = synthetic_log();
        let config = ExplainConfig::default();
        let (records, related) = collect_related_pairs(&log, &query(), &config);
        assert_eq!(records.len(), 30);
        assert!(!related.is_empty());
        assert!(related.iter().any(|p| p.label == PairLabel::Observed));
        assert!(related.iter().any(|p| p.label == PairLabel::Expected));
        // Only pairs with strictly greater input size are related.
        for pair in &related {
            let left = records[pair.left].feature("inputsize").as_num().unwrap();
            let right = records[pair.right].feature("inputsize").as_num().unwrap();
            assert!(left > right);
        }
    }

    #[test]
    fn training_set_is_materialised_and_balanced() {
        let log = synthetic_log();
        let config = ExplainConfig::default().with_sample_size(60);
        let set = prepare_training_set(&log, &query(), &config).unwrap();
        assert!(!set.is_empty());
        assert!(set.num_observed() > 0);
        assert!(set.num_expected() > 0);
        // Full pair features are available.
        assert!(set.examples[0].features.contains_key("blocksize_isSame"));
        assert!(set.examples[0].features.contains_key("blocksize_compare"));
        assert_eq!(set.iter().count(), set.len());
    }

    #[test]
    fn capping_limits_candidate_pairs() {
        let log = synthetic_log();
        let config = ExplainConfig {
            max_candidate_pairs: 50,
            ..ExplainConfig::default()
        };
        let (_, related) = collect_related_pairs(&log, &query(), &config);
        // 30 jobs -> 870 ordered pairs before capping; far fewer after.
        assert!(related.len() <= 60, "related = {}", related.len());
    }

    #[test]
    fn blocking_restricts_to_matching_groups() {
        let log = synthetic_log();
        let q = parse_query(
            "DESPITE pigscript_isSame = T\n\
             OBSERVED duration_compare = GT\n\
             EXPECTED duration_compare = SIM",
        )
        .unwrap();
        let bound = BoundQuery::new(q, "job_0", "job_5");
        assert_eq!(blocking_feature(&bound, &log), Some("pigscript"));
        let config = ExplainConfig::default();
        let (records, related) = collect_related_pairs(&log, &bound, &config);
        for pair in &related {
            assert_eq!(
                records[pair.left].feature("pigscript"),
                records[pair.right].feature("pigscript")
            );
        }
    }

    #[test]
    fn single_class_fails_with_descriptive_error() {
        // All jobs identical: no pair can perform "as observed".
        let mut log = ExecutionLog::new();
        for i in 0..5 {
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("inputsize", 1.0e9)
                    .with_feature("duration", 100.0),
            );
        }
        log.rebuild_catalogs();
        let err = prepare_training_set(&log, &query(), &ExplainConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::NotEnoughTrainingPairs { .. }));
    }

    #[test]
    fn tiny_log_yields_no_pairs() {
        let mut log = ExecutionLog::new();
        log.push(ExecutionRecord::job("only").with_feature("duration", 1.0));
        log.rebuild_catalogs();
        let (_, related) = collect_related_pairs(&log, &query(), &ExplainConfig::default());
        assert!(related.is_empty());
    }
}
