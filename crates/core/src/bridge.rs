//! Bridge between the pair-feature representation (PXQL [`Value`]s) and the
//! columnar dataset representation `mlcore` uses for split search.
//!
//! The bridge owns the attribute schema (one attribute per allowed pair
//! feature), the interning dictionaries for nominal values, the mapping from
//! interned ids back to the *original* `Value`s (so that learned tests can
//! be turned back into PXQL atoms, including `diff` features whose values
//! are pairs), and the pair-of-interest's row, which Algorithm 1 needs to
//! enforce applicability.

use crate::columnar::ColumnarLog;
use crate::features::FeatureKind;
use crate::pairs::{
    compare_index, PairCatalog, PairExample, PairFeatureDef, PairFeatureGroup, COMPARE_VALUES,
};
use crate::training::{EncodedTraining, TrainingSet};
use mlcore::{AttrValue, Attribute, Dataset, TestAtom, TestConstant, TestOp};
use pxql::{Atom, Op, Value};

/// The columnar view of a training set plus the pair of interest.
#[derive(Debug, Clone)]
pub struct DatasetBridge {
    dataset: Dataset,
    attr_names: Vec<String>,
    /// For every attribute, the original `Value` behind each interned
    /// nominal id (empty for numeric attributes).
    originals: Vec<Vec<Value>>,
    poi_row: Vec<AttrValue>,
}

impl DatasetBridge {
    /// Builds the bridge from a training set.
    ///
    /// * `catalog` — the pair features to expose as attributes (already
    ///   restricted to the configured feature level);
    /// * `excluded_raw` — raw features whose derived pair features must not
    ///   appear in explanations (the query's own performance metric plus any
    ///   user-configured exclusions);
    /// * `poi` — the pair of interest, interned alongside the training pairs
    ///   so applicability can be checked per candidate test.
    pub fn build(
        set: &TrainingSet,
        poi: &PairExample,
        catalog: &PairCatalog,
        excluded_raw: &[String],
    ) -> Self {
        let defs: Vec<_> = catalog
            .defs()
            .iter()
            .filter(|d| !excluded_raw.iter().any(|x| x == &d.raw))
            .collect();

        let attributes: Vec<Attribute> = defs
            .iter()
            .map(|d| match d.kind {
                FeatureKind::Numeric => Attribute::numeric(d.name.clone()),
                FeatureKind::Nominal => Attribute::nominal(d.name.clone()),
            })
            .collect();
        let attr_names: Vec<String> = defs.iter().map(|d| d.name.clone()).collect();
        let mut dataset = Dataset::new(attributes);
        let mut originals: Vec<Vec<Value>> = vec![Vec::new(); defs.len()];

        let encode_row = |dataset: &mut Dataset,
                          originals: &mut Vec<Vec<Value>>,
                          pair: &PairExample|
         -> Vec<AttrValue> {
            defs.iter()
                .enumerate()
                .map(|(i, def)| {
                    let value = pair.feature(&def.name);
                    encode_value(dataset, originals, i, def.kind, value)
                })
                .collect()
        };

        // Intern the pair of interest first so that its values always exist
        // in the dictionaries (candidate equality tests can then target
        // them).
        let poi_row = encode_row(&mut dataset, &mut originals, poi);
        for (example, label) in set.iter() {
            let row = encode_row(&mut dataset, &mut originals, example);
            dataset.push(row, label);
        }

        DatasetBridge {
            dataset,
            attr_names,
            originals,
            poi_row,
        }
    }

    /// Builds the bridge straight from an encoded training set: pair
    /// features of the sampled pairs are derived from the columnar view and
    /// interned into the dataset in a single pass — no intermediate
    /// `PairExample` maps.  Produces a dataset identical to
    /// [`DatasetBridge::build`] over the materialised training set.
    ///
    /// `poi` is the pair of interest as `(left row, right row)` indices into
    /// the view.
    pub fn encode_from_view(
        training: &EncodedTraining<'_>,
        poi: (usize, usize),
        catalog: &PairCatalog,
        excluded_raw: &[String],
        sim_threshold: f64,
    ) -> Self {
        let view = &training.view;
        let defs: Vec<&PairFeatureDef> = catalog
            .defs()
            .iter()
            .filter(|d| !excluded_raw.iter().any(|x| x == &d.raw))
            .collect();

        let attributes: Vec<Attribute> = defs
            .iter()
            .map(|d| match d.kind {
                FeatureKind::Numeric => Attribute::numeric(d.name.clone()),
                FeatureKind::Nominal => Attribute::nominal(d.name.clone()),
            })
            .collect();
        let attr_names: Vec<String> = defs.iter().map(|d| d.name.clone()).collect();
        // Resolve every attribute's raw-feature column once, not per cell.
        let columns: Vec<Option<usize>> = defs.iter().map(|d| view.column_of(&d.raw)).collect();
        let mut dataset = Dataset::new(attributes);
        let mut originals: Vec<Vec<Value>> = vec![Vec::new(); defs.len()];

        let encode_row = |dataset: &mut Dataset,
                          originals: &mut Vec<Vec<Value>>,
                          left: usize,
                          right: usize|
         -> Vec<AttrValue> {
            defs.iter()
                .zip(&columns)
                .enumerate()
                .map(|(i, (def, &col))| {
                    encode_pair_cell(
                        view,
                        def,
                        col,
                        left,
                        right,
                        sim_threshold,
                        dataset,
                        originals,
                        i,
                    )
                })
                .collect()
        };

        // Intern the pair of interest first (same order as `build`) so that
        // its values always exist in the dictionaries.
        let poi_row = encode_row(&mut dataset, &mut originals, poi.0, poi.1);
        for (&(left, right), &label) in training.pairs.iter().zip(&training.labels) {
            let row = encode_row(&mut dataset, &mut originals, left, right);
            dataset.push(row, label);
        }

        DatasetBridge {
            dataset,
            attr_names,
            originals,
            poi_row,
        }
    }

    /// The columnar dataset (one row per training pair).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Number of attributes exposed to the split search.
    pub fn num_attributes(&self) -> usize {
        self.attr_names.len()
    }

    /// Name of attribute `index`.
    pub fn attr_name(&self, index: usize) -> &str {
        &self.attr_names[index]
    }

    /// The pair of interest's value for attribute `index`.
    pub fn poi_value(&self, index: usize) -> AttrValue {
        self.poi_row[index]
    }

    /// Converts a learned test back into a PXQL atom, resolving interned
    /// nominal ids to their original values.
    pub fn atom_to_pxql(&self, atom: &TestAtom) -> Atom {
        let feature = self.attr_names[atom.attribute].clone();
        let (op, constant) = match (atom.op, atom.constant) {
            (TestOp::Eq, TestConstant::Num(v)) => (Op::Eq, Value::Num(v)),
            (TestOp::Le, TestConstant::Num(v)) => (Op::Le, Value::Num(v)),
            (TestOp::Gt, TestConstant::Num(v)) => (Op::Gt, Value::Num(v)),
            (_, TestConstant::Nom(id)) => (
                Op::Eq,
                self.originals[atom.attribute]
                    .get(id as usize)
                    .cloned()
                    .unwrap_or(Value::Null),
            ),
        };
        Atom {
            feature,
            op,
            constant,
        }
    }
}

/// Derives and encodes one pair-feature cell straight from the columnar
/// view, interning nominal values exactly as [`encode_value`] would have
/// for the materialised value.
#[allow(clippy::too_many_arguments)]
fn encode_pair_cell(
    view: &ColumnarLog,
    def: &PairFeatureDef,
    col: Option<usize>,
    left: usize,
    right: usize,
    sim_threshold: f64,
    dataset: &mut Dataset,
    originals: &mut [Vec<Value>],
    attr_index: usize,
) -> AttrValue {
    let Some(col) = col else {
        return AttrValue::Missing;
    };
    let l = view.cell(left, col);
    let r = view.cell(right, col);
    let missing = l.is_missing() || r.is_missing();
    let intern = |dataset: &mut Dataset, originals: &mut [Vec<Value>], value: Value| {
        let key = value.to_string();
        let dictionary = &mut dataset.attribute_mut(attr_index).dictionary;
        let id = dictionary.intern(&key);
        if id as usize == originals[attr_index].len() {
            originals[attr_index].push(value);
        }
        AttrValue::Nom(id)
    };
    match def.group {
        PairFeatureGroup::IsSame => {
            if missing {
                AttrValue::Missing
            } else {
                intern(dataset, originals, Value::Bool(view.cells_equal(l, r)))
            }
        }
        PairFeatureGroup::Compare => match (view.column_kind(col), l, r) {
            (FeatureKind::Numeric, AttrValue::Num(lv), AttrValue::Num(rv)) => {
                let outcome = COMPARE_VALUES[compare_index(lv, rv, sim_threshold)];
                intern(dataset, originals, Value::str(outcome))
            }
            _ => AttrValue::Missing,
        },
        PairFeatureGroup::Diff => {
            if view.column_kind(col) == FeatureKind::Nominal && !missing && !view.cells_equal(l, r)
            {
                let value = Value::pair(view.decode(col, l), view.decode(col, r));
                intern(dataset, originals, value)
            } else {
                AttrValue::Missing
            }
        }
        PairFeatureGroup::Base => {
            if missing || !view.cells_equal(l, r) {
                return AttrValue::Missing;
            }
            match (l, def.kind) {
                (AttrValue::Num(v), FeatureKind::Numeric) => AttrValue::Num(v),
                _ => {
                    let value = view.decode(col, l);
                    intern(dataset, originals, value)
                }
            }
        }
    }
}

/// Encodes one pair-feature value into the dataset representation, interning
/// nominal values and remembering their originals.
fn encode_value(
    dataset: &mut Dataset,
    originals: &mut [Vec<Value>],
    attr_index: usize,
    kind: FeatureKind,
    value: Value,
) -> AttrValue {
    match (&value, kind) {
        (Value::Null, _) => AttrValue::Missing,
        (Value::Num(v), FeatureKind::Numeric) => AttrValue::Num(*v),
        _ => {
            // Everything else is treated as a nominal symbol keyed by its
            // canonical text form.
            let key = value.to_string();
            let dictionary = &mut dataset.attribute_mut(attr_index).dictionary;
            let id = dictionary.intern(&key);
            if id as usize == originals[attr_index].len() {
                originals[attr_index].push(value);
            }
            AttrValue::Nom(id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureCatalog, FeatureDef};
    use crate::pairs::{compute_pair_features, PairCatalog};
    use crate::record::ExecutionRecord;
    use mlcore::{TestAtom, TestConstant, TestOp};

    fn setup() -> (DatasetBridge, PairCatalog) {
        let raw = FeatureCatalog::from_defs(vec![
            FeatureDef::numeric("inputsize"),
            FeatureDef::nominal("pigscript"),
            FeatureDef::numeric("duration"),
        ]);
        let catalog = PairCatalog::from_raw(&raw);

        let job = |id: &str, size: f64, script: &str, duration: f64| {
            ExecutionRecord::job(id)
                .with_feature("inputsize", size)
                .with_feature("pigscript", script)
                .with_feature("duration", duration)
        };
        let a = job("a", 2.0e9, "filter.pig", 100.0);
        let b = job("b", 1.0e9, "group.pig", 100.0);
        let c = job("c", 2.0e9, "filter.pig", 300.0);

        let mut set = TrainingSet::default();
        for (left, right, label) in [(&a, &b, true), (&a, &c, false), (&b, &c, true)] {
            set.examples.push(PairExample {
                left_id: left.id.clone(),
                right_id: right.id.clone(),
                features: compute_pair_features(&raw, left, right, 0.1),
            });
            set.labels.push(label);
        }
        let poi = set.examples[0].clone();
        let bridge = DatasetBridge::build(&set, &poi, &catalog, &["duration".to_string()]);
        (bridge, catalog)
    }

    #[test]
    fn excluded_raw_features_are_absent() {
        let (bridge, catalog) = setup();
        // duration contributes 4 pair features that must all be gone.
        assert_eq!(bridge.num_attributes(), catalog.len() - 4);
        assert!(!(0..bridge.num_attributes()).any(|i| bridge.attr_name(i).starts_with("duration")));
        assert_eq!(bridge.dataset().len(), 3);
    }

    #[test]
    fn nominal_atoms_round_trip_to_pxql() {
        let (bridge, _) = setup();
        let attr = (0..bridge.num_attributes())
            .find(|&i| bridge.attr_name(i) == "pigscript_diff")
            .unwrap();
        // The pair of interest (a, b) disagrees on the script, so its diff
        // value is interned; id 0 belongs to it.
        let atom = TestAtom {
            attribute: attr,
            op: TestOp::Eq,
            constant: TestConstant::Nom(0),
        };
        let pxql_atom = bridge.atom_to_pxql(&atom);
        assert_eq!(pxql_atom.feature, "pigscript_diff");
        assert_eq!(
            pxql_atom.constant,
            Value::pair(Value::str("filter.pig"), Value::str("group.pig"))
        );
    }

    #[test]
    fn numeric_atoms_round_trip_to_pxql() {
        let (bridge, _) = setup();
        let attr = (0..bridge.num_attributes())
            .find(|&i| bridge.attr_name(i) == "inputsize")
            .unwrap();
        let atom = TestAtom {
            attribute: attr,
            op: TestOp::Gt,
            constant: TestConstant::Num(1.5e9),
        };
        let pxql_atom = bridge.atom_to_pxql(&atom);
        assert_eq!(pxql_atom.op, Op::Gt);
        assert_eq!(pxql_atom.constant, Value::Num(1.5e9));
    }

    #[test]
    fn poi_row_is_available_for_applicability_checks() {
        let (bridge, _) = setup();
        let is_same_attr = (0..bridge.num_attributes())
            .find(|&i| bridge.attr_name(i) == "pigscript_isSame")
            .unwrap();
        // The pair of interest disagrees on the script, so its isSame value
        // is the interned form of `F`, not missing.
        assert!(!matches!(
            bridge.poi_value(is_same_attr),
            AttrValue::Missing
        ));
    }
}
