//! Pair (training-example) feature construction — Table 1 of the paper.
//!
//! A training example is a *pair* of executions.  For every raw feature `f`
//! of the execution schema the pair carries four derived features that
//! encode the relationship between the two executions at different levels of
//! resolution:
//!
//! | pair feature   | domain                        | defined for |
//! |----------------|-------------------------------|-------------|
//! | `f_isSame`     | `{T, F}`                      | all         |
//! | `f_compare`    | `{LT, SIM, GT}`               | numeric `f` |
//! | `f_diff`       | `dom(f) × dom(f)`             | nominal `f` |
//! | `f` (base)     | `dom(f)`                      | pairs agreeing on `f` |
//!
//! Two numeric values are *similar* (SIM) when they are within 10% of one
//! another (configurable).  Features that do not apply (e.g. `f_compare` of
//! a nominal feature, or the base feature of a pair that disagrees) are
//! missing.

use crate::features::{FeatureCatalog, FeatureDef, FeatureKind};
use crate::record::ExecutionRecord;
use mlcore::{FxHashMap, FxHashSet};
use pxql::{FeatureSource, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default similarity band of the `compare` features (Section 3.1,
/// footnote 1: "two values are considered to be similar if they are within
/// 10% of one another").
pub const DEFAULT_SIM_THRESHOLD: f64 = 0.10;

/// Value of a `compare` feature: the first execution's value is much less
/// than, similar to, or much greater than the second's.
pub mod compare_values {
    /// Much less than.
    pub const LT: &str = "LT";
    /// Similar (within the similarity band).
    pub const SIM: &str = "SIM";
    /// Much greater than.
    pub const GT: &str = "GT";
}

/// The three `compare` outcomes, indexed by [`compare_index`].
pub const COMPARE_VALUES: [&str; 3] = [compare_values::LT, compare_values::SIM, compare_values::GT];

/// Which of the four groups of Table 1 a pair feature belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairFeatureGroup {
    /// `f_isSame` features.
    IsSame,
    /// `f_compare` features.
    Compare,
    /// `f_diff` features.
    Diff,
    /// Base features copied from the executions when they agree.
    Base,
}

/// Suffix conventions for derived pair feature names.
pub const IS_SAME_SUFFIX: &str = "_isSame";
/// Suffix of `compare` features.
pub const COMPARE_SUFFIX: &str = "_compare";
/// Suffix of `diff` features.
pub const DIFF_SUFFIX: &str = "_diff";

/// Name of the `isSame` feature derived from raw feature `f`.
pub fn is_same_name(raw: &str) -> String {
    format!("{raw}{IS_SAME_SUFFIX}")
}

/// Name of the `compare` feature derived from raw feature `f`.
pub fn compare_name(raw: &str) -> String {
    format!("{raw}{COMPARE_SUFFIX}")
}

/// Name of the `diff` feature derived from raw feature `f`.
pub fn diff_name(raw: &str) -> String {
    format!("{raw}{DIFF_SUFFIX}")
}

/// Decomposes a pair feature name into the raw feature it derives from and
/// its group.
pub fn parse_pair_feature(name: &str) -> (&str, PairFeatureGroup) {
    if let Some(raw) = name.strip_suffix(IS_SAME_SUFFIX) {
        (raw, PairFeatureGroup::IsSame)
    } else if let Some(raw) = name.strip_suffix(COMPARE_SUFFIX) {
        (raw, PairFeatureGroup::Compare)
    } else if let Some(raw) = name.strip_suffix(DIFF_SUFFIX) {
        (raw, PairFeatureGroup::Diff)
    } else {
        (name, PairFeatureGroup::Base)
    }
}

/// A pair-feature definition: name, storage kind and group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairFeatureDef {
    /// Pair feature name (e.g. `inputsize_compare`).
    pub name: String,
    /// Whether the derived feature is numeric or nominal.
    pub kind: FeatureKind,
    /// Which group of Table 1 the feature belongs to.
    pub group: PairFeatureGroup,
    /// The raw feature it was derived from.
    pub raw: String,
}

/// The catalog of pair features derived from a raw-feature catalog.
///
/// Lookup by name goes through a precomputed index, so [`PairCatalog::get`]
/// is O(1) instead of a linear scan over 4·k definitions.
#[derive(Debug, Clone, Default)]
pub struct PairCatalog {
    defs: Vec<PairFeatureDef>,
    index: FxHashMap<String, usize>,
}

impl PairCatalog {
    fn from_defs(defs: Vec<PairFeatureDef>) -> Self {
        let index = defs
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name.clone(), i))
            .collect();
        PairCatalog { defs, index }
    }

    /// Derives the 4·k pair features of a raw catalog with k features.
    pub fn from_raw(catalog: &FeatureCatalog) -> Self {
        let mut defs = Vec::with_capacity(catalog.len() * 4);
        for FeatureDef { name, kind } in catalog.defs() {
            defs.push(PairFeatureDef {
                name: is_same_name(name),
                kind: FeatureKind::Nominal,
                group: PairFeatureGroup::IsSame,
                raw: name.clone(),
            });
            defs.push(PairFeatureDef {
                name: compare_name(name),
                kind: FeatureKind::Nominal,
                group: PairFeatureGroup::Compare,
                raw: name.clone(),
            });
            defs.push(PairFeatureDef {
                name: diff_name(name),
                kind: FeatureKind::Nominal,
                group: PairFeatureGroup::Diff,
                raw: name.clone(),
            });
            defs.push(PairFeatureDef {
                name: name.clone(),
                kind: *kind,
                group: PairFeatureGroup::Base,
                raw: name.clone(),
            });
        }
        PairCatalog::from_defs(defs)
    }

    /// The pair-feature definitions.
    pub fn defs(&self) -> &[PairFeatureDef] {
        &self.defs
    }

    /// Number of pair features (4·k).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Looks a pair feature up by name (O(1)).
    pub fn get(&self, name: &str) -> Option<&PairFeatureDef> {
        self.index.get(name).map(|&i| &self.defs[i])
    }

    /// Restricts the catalog to the given groups (used by the feature-level
    /// experiment of Section 6.8).
    pub fn restrict_to_groups(&self, groups: &[PairFeatureGroup]) -> PairCatalog {
        PairCatalog::from_defs(
            self.defs
                .iter()
                .filter(|d| groups.contains(&d.group))
                .cloned()
                .collect(),
        )
    }
}

impl PartialEq for PairCatalog {
    fn eq(&self, other: &Self) -> bool {
        // The index is derived from the definitions.
        self.defs == other.defs
    }
}

impl Serialize for PairCatalog {
    fn serialize(&self) -> serde::Content {
        serde::Content::Map(vec![("defs".to_string(), self.defs.serialize())])
    }
}

impl Deserialize for PairCatalog {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::DeError> {
        let entries = content
            .as_map()
            .ok_or_else(|| serde::DeError::expected("map", "PairCatalog"))?;
        let defs = Deserialize::deserialize(serde::Content::field(entries, "defs"))?;
        Ok(PairCatalog::from_defs(defs))
    }
}

/// Classifies the relationship between two numeric values as an index into
/// [`COMPARE_VALUES`] (0 = LT, 1 = SIM, 2 = GT).  The index form lets the
/// columnar hot path pre-evaluate predicates per outcome and skip the
/// `&'static str` entirely.
pub fn compare_index(left: f64, right: f64, sim_threshold: f64) -> usize {
    let scale = left.abs().max(right.abs());
    if scale == 0.0 || (left - right).abs() <= sim_threshold * scale {
        1
    } else if left < right {
        0
    } else {
        2
    }
}

/// Classifies the relationship between two numeric values.
fn compare_numbers(left: f64, right: f64, sim_threshold: f64) -> &'static str {
    COMPARE_VALUES[compare_index(left, right, sim_threshold)]
}

/// `isSame` value of one raw feature: defined whenever both sides are
/// present.
pub(crate) fn is_same_value(left: &Value, right: &Value) -> Value {
    if left.is_null() || right.is_null() {
        Value::Null
    } else {
        Value::Bool(left.pxql_eq(right))
    }
}

/// `compare` value of one raw feature: numeric features only.
pub(crate) fn compare_value(
    def: &FeatureDef,
    left: &Value,
    right: &Value,
    sim_threshold: f64,
) -> Value {
    match (def.kind, left.as_num(), right.as_num()) {
        (FeatureKind::Numeric, Some(l), Some(r)) => {
            Value::str(compare_numbers(l, r, sim_threshold))
        }
        _ => Value::Null,
    }
}

/// `diff` value of one raw feature: nominal features only, and only when
/// the two values differ.
pub(crate) fn diff_value(def: &FeatureDef, left: &Value, right: &Value) -> Value {
    let missing = left.is_null() || right.is_null();
    if def.kind == FeatureKind::Nominal && !missing && !left.pxql_eq(right) {
        Value::pair(left.clone(), right.clone())
    } else {
        Value::Null
    }
}

/// Base value of one raw feature: the shared value when the executions
/// agree.
pub(crate) fn base_value(left: &Value, right: &Value) -> Value {
    if !left.is_null() && !right.is_null() && left.pxql_eq(right) {
        left.clone()
    } else {
        Value::Null
    }
}

/// Computes the pair features of `(left, right)` for one raw feature.
fn pair_features_for(
    def: &FeatureDef,
    left: &Value,
    right: &Value,
    sim_threshold: f64,
    out: &mut BTreeMap<String, Value>,
) {
    let name = &def.name;
    out.insert(is_same_name(name), is_same_value(left, right));
    out.insert(
        compare_name(name),
        compare_value(def, left, right, sim_threshold),
    );
    out.insert(diff_name(name), diff_value(def, left, right));
    out.insert(name.clone(), base_value(left, right));
}

/// Computes the full pair-feature map of a pair of executions.
pub fn compute_pair_features(
    catalog: &FeatureCatalog,
    left: &ExecutionRecord,
    right: &ExecutionRecord,
    sim_threshold: f64,
) -> BTreeMap<String, Value> {
    let mut out = BTreeMap::new();
    for def in catalog.defs() {
        let l = left.feature(&def.name);
        let r = right.feature(&def.name);
        pair_features_for(def, &l, &r, sim_threshold, &mut out);
    }
    out
}

/// Computes only the pair features named in `needed`, resolving each back to
/// its raw feature.  Much cheaper than [`compute_pair_features`] when
/// classifying large numbers of candidate pairs against a query that
/// mentions only a handful of features.
pub fn compute_selected_pair_features(
    catalog: &FeatureCatalog,
    left: &ExecutionRecord,
    right: &ExecutionRecord,
    sim_threshold: f64,
    needed: &[&str],
) -> BTreeMap<String, Value> {
    // Deduplicate (raw feature, group) requests with a set, then compute
    // only the derived groups that were actually asked for.
    let mut requested: FxHashSet<(&str, PairFeatureGroup)> =
        FxHashSet::with_capacity_and_hasher(needed.len(), Default::default());
    for name in needed {
        requested.insert(parse_pair_feature(name));
    }
    let mut out = BTreeMap::new();
    for (raw, group) in requested {
        if let Some(def) = catalog.get(raw) {
            let l = left.feature(&def.name);
            let r = right.feature(&def.name);
            let value = match group {
                PairFeatureGroup::IsSame => is_same_value(&l, &r),
                PairFeatureGroup::Compare => compare_value(def, &l, &r, sim_threshold),
                PairFeatureGroup::Diff => diff_value(def, &l, &r),
                PairFeatureGroup::Base => base_value(&l, &r),
            };
            let name = match group {
                PairFeatureGroup::IsSame => is_same_name(raw),
                PairFeatureGroup::Compare => compare_name(raw),
                PairFeatureGroup::Diff => diff_name(raw),
                PairFeatureGroup::Base => raw.to_string(),
            };
            out.insert(name, value);
        }
    }
    out
}

/// A fully materialised training example: a pair of executions plus its pair
/// features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairExample {
    /// Identifier of the first execution.
    pub left_id: String,
    /// Identifier of the second execution.
    pub right_id: String,
    /// The derived pair features.
    pub features: BTreeMap<String, Value>,
}

impl PairExample {
    /// Builds the pair example for `(left, right)`.
    pub fn build(
        catalog: &FeatureCatalog,
        left: &ExecutionRecord,
        right: &ExecutionRecord,
        sim_threshold: f64,
    ) -> Self {
        PairExample {
            left_id: left.id.clone(),
            right_id: right.id.clone(),
            features: compute_pair_features(catalog, left, right, sim_threshold),
        }
    }

    /// Reads a pair feature (missing features read as `Null`).
    pub fn feature(&self, name: &str) -> Value {
        self.features.get(name).cloned().unwrap_or(Value::Null)
    }
}

impl FeatureSource for PairExample {
    fn feature(&self, name: &str) -> Option<Value> {
        self.features.get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureDef;

    fn catalog() -> FeatureCatalog {
        FeatureCatalog::from_defs(vec![
            FeatureDef::numeric("inputsize"),
            FeatureDef::numeric("numinstances"),
            FeatureDef::nominal("pigscript"),
            FeatureDef::numeric("duration"),
        ])
    }

    fn job(
        id: &str,
        inputsize: f64,
        instances: f64,
        script: &str,
        duration: f64,
    ) -> ExecutionRecord {
        ExecutionRecord::job(id)
            .with_feature("inputsize", inputsize)
            .with_feature("numinstances", instances)
            .with_feature("pigscript", script)
            .with_feature("duration", duration)
    }

    #[test]
    fn table1_feature_groups_are_generated() {
        let catalog = catalog();
        let pair_catalog = PairCatalog::from_raw(&catalog);
        assert_eq!(pair_catalog.len(), 16);
        assert!(pair_catalog.get("inputsize_isSame").is_some());
        assert!(pair_catalog.get("inputsize_compare").is_some());
        assert!(pair_catalog.get("inputsize_diff").is_some());
        assert!(pair_catalog.get("inputsize").is_some());
        assert_eq!(
            pair_catalog.get("pigscript").unwrap().kind,
            FeatureKind::Nominal
        );
        assert_eq!(
            pair_catalog.get("inputsize").unwrap().group,
            PairFeatureGroup::Base
        );
    }

    #[test]
    fn compare_uses_ten_percent_band() {
        assert_eq!(compare_numbers(100.0, 109.0, 0.10), compare_values::SIM);
        assert_eq!(compare_numbers(100.0, 95.0, 0.10), compare_values::SIM);
        assert_eq!(compare_numbers(100.0, 300.0, 0.10), compare_values::LT);
        assert_eq!(compare_numbers(300.0, 100.0, 0.10), compare_values::GT);
        assert_eq!(compare_numbers(0.0, 0.0, 0.10), compare_values::SIM);
    }

    #[test]
    fn pair_features_of_differing_jobs() {
        let catalog = catalog();
        let a = job("job_a", 32.0e9, 8.0, "simple-filter.pig", 1800.0);
        let b = job("job_b", 1.0e9, 8.0, "simple-groupby.pig", 1750.0);
        let pair = PairExample::build(&catalog, &a, &b, DEFAULT_SIM_THRESHOLD);

        assert_eq!(pair.feature("inputsize_isSame"), Value::Bool(false));
        assert_eq!(pair.feature("inputsize_compare"), Value::str("GT"));
        // diff only applies to nominal features.
        assert!(pair.feature("inputsize_diff").is_null());
        // base only applies when values agree.
        assert!(pair.feature("inputsize").is_null());

        assert_eq!(pair.feature("numinstances_isSame"), Value::Bool(true));
        assert_eq!(pair.feature("numinstances_compare"), Value::str("SIM"));
        assert_eq!(pair.feature("numinstances"), Value::Num(8.0));

        assert_eq!(pair.feature("pigscript_isSame"), Value::Bool(false));
        assert!(pair.feature("pigscript_compare").is_null());
        assert_eq!(
            pair.feature("pigscript_diff"),
            Value::pair(
                Value::str("simple-filter.pig"),
                Value::str("simple-groupby.pig")
            )
        );

        assert_eq!(pair.feature("duration_compare"), Value::str("SIM"));
    }

    #[test]
    fn missing_raw_values_propagate_as_missing() {
        let catalog = catalog();
        let a = job("job_a", 1.0e9, 8.0, "simple-filter.pig", 100.0);
        let mut b = job("job_b", 1.0e9, 8.0, "simple-filter.pig", 100.0);
        b.features.remove("numinstances");
        let pair = PairExample::build(&catalog, &a, &b, DEFAULT_SIM_THRESHOLD);
        assert!(pair.feature("numinstances_isSame").is_null());
        assert!(pair.feature("numinstances_compare").is_null());
        assert!(pair.feature("numinstances").is_null());
    }

    #[test]
    fn selected_features_match_full_computation() {
        let catalog = catalog();
        let a = job("job_a", 2.0e9, 4.0, "simple-filter.pig", 400.0);
        let b = job("job_b", 1.0e9, 16.0, "simple-groupby.pig", 380.0);
        let full = compute_pair_features(&catalog, &a, &b, DEFAULT_SIM_THRESHOLD);
        let selected = compute_selected_pair_features(
            &catalog,
            &a,
            &b,
            DEFAULT_SIM_THRESHOLD,
            &["duration_compare", "numinstances_isSame"],
        );
        assert_eq!(
            selected.get("duration_compare"),
            full.get("duration_compare")
        );
        assert_eq!(
            selected.get("numinstances_isSame"),
            full.get("numinstances_isSame")
        );
        // Untouched raw features are simply not computed.
        assert!(!selected.contains_key("pigscript_diff"));
    }

    #[test]
    fn parse_pair_feature_names() {
        assert_eq!(
            parse_pair_feature("inputsize_isSame"),
            ("inputsize", PairFeatureGroup::IsSame)
        );
        assert_eq!(
            parse_pair_feature("avg_load_five_compare"),
            ("avg_load_five", PairFeatureGroup::Compare)
        );
        assert_eq!(
            parse_pair_feature("pigscript_diff"),
            ("pigscript", PairFeatureGroup::Diff)
        );
        assert_eq!(
            parse_pair_feature("blocksize"),
            ("blocksize", PairFeatureGroup::Base)
        );
    }

    #[test]
    fn restrict_to_groups_filters_catalog() {
        let pair_catalog = PairCatalog::from_raw(&catalog());
        let level1 = pair_catalog.restrict_to_groups(&[PairFeatureGroup::IsSame]);
        assert_eq!(level1.len(), 4);
        assert!(level1
            .defs()
            .iter()
            .all(|d| d.group == PairFeatureGroup::IsSame));
    }
}
