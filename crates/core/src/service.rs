//! Long-lived query service: encode the log once, serve many PXQL queries.
//!
//! PerfXplain is an *interactive* debugging tool — a user investigating one
//! slow job poses many PXQL queries against the same execution log.  The
//! stateless [`PerfXplain`] API re-encodes the log's columnar view on every
//! call; [`XplainService`] is the long-lived alternative that caches the
//! [`ColumnarLog`] encoding and reuses it across queries and across
//! threads:
//!
//! * The service owns the [`ExecutionLog`] behind an `RwLock`.  Mutations go
//!   through [`XplainService::with_log_mut`] and bump the log's
//!   **generation counter**; queries run under the read lock against a
//!   cached view stamped with the generation it was built at, so a stale
//!   view can never be observed.
//! * The cache is **delta-maintained**: records ingested through
//!   [`XplainService::append`] keep the cached views alive, and the next
//!   query splices the fresh records into a small *tail segment*
//!   ([`ColumnarLog::with_appended`]) that shares the unchanged base
//!   buffers by `Arc` — refresh cost is O(tail), not O(log).  Non-append
//!   mutations ([`XplainService::with_log_mut`],
//!   [`XplainService::replace_log`]) still drop the cache and trigger a
//!   full rebuild; the log's per-kind *rewrite watermark*
//!   ([`ExecutionLog::rewrite_generation`]) is what separates the two.
//!   Oversized tails are folded back into the base in the background
//!   ([`CompactionPolicy`]), off the query path.
//! * One [`QueryRequest`] carries everything a query needs — the PXQL text
//!   (or an already-parsed/bound query), the pair of interest, per-query
//!   config overrides, and the despite-extension / narration / assessment
//!   flags — and one [`QueryOutcome`] carries everything back, replacing
//!   the old parse → bind → explain → assess → narrate choreography.
//! * The service is `Sync`: [`XplainService::par_explain_batch`] answers a
//!   slice of requests across `std::thread::scope` threads, all sharing the
//!   same cached `Arc<ColumnarLog>` view.
//!
//! The stateless [`PerfXplain::explain`] / [`PerfXplain::explain_full`] are
//! thin wrappers over a single-shot pass through this module
//! ([`XplainService::answer_once`]), so there is exactly one code path.

use crate::cancel::CancelToken;
use crate::columnar::ColumnarLog;
use crate::config::ExplainConfig;
use crate::error::Result;
use crate::explain::PerfXplain;
use crate::explanation::Explanation;
use crate::metrics::{assess, ExplanationQuality};
use crate::narrate::narrate;
use crate::query::BoundQuery;
use crate::record::{ExecutionKind, ExecutionLog, ExecutionRecord};
use pxql::PxqlQuery;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// An observer for the **actual** cost of a query, fired from inside the
/// explanation pipeline once the related pairs have been enumerated —
/// the point where the admission-time estimate (an upper bound over the
/// candidate space) can be replaced by the measured related-pair count.
/// Admission controllers attach one via [`QueryRequest::with_cost_probe`]
/// and refund the estimate/actual difference to their budget mid-flight.
#[derive(Clone)]
pub struct CostProbe(Arc<dyn Fn(u64) + Send + Sync>);

impl CostProbe {
    /// Wraps a callback invoked with the enumerated related-pair count.
    pub fn new(f: impl Fn(u64) + Send + Sync + 'static) -> Self {
        CostProbe(Arc::new(f))
    }

    /// Reports the measured related-pair count to the observer.
    pub fn fire(&self, related_pairs: u64) {
        (self.0)(related_pairs)
    }
}

impl std::fmt::Debug for CostProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CostProbe(..)")
    }
}

/// The query of a [`QueryRequest`]: PXQL text, a parsed AST, or an
/// already-bound query.
#[derive(Debug, Clone)]
pub enum QueryInput {
    /// PXQL text, parsed by the service.
    Text(String),
    /// An already-parsed query; the pair of interest comes from its `WHERE`
    /// bindings or from [`QueryRequest::pair`].
    Parsed(PxqlQuery),
    /// A fully bound query.
    Bound(BoundQuery),
}

/// One self-contained query against an [`XplainService`].
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The PXQL query (text, parsed, or bound).
    pub query: QueryInput,
    /// The pair of interest; overrides the query's own `WHERE` bindings.
    pub pair: Option<(String, String)>,
    /// Per-query configuration override (the service's config otherwise).
    pub config: Option<ExplainConfig>,
    /// Extend an irrelevant despite clause automatically (Section 6.4)
    /// before generating the because clause.
    pub extend_despite: bool,
    /// Render the explanation in plain English into
    /// [`QueryOutcome::narration`].
    pub narrate: bool,
    /// Score the explanation over the related pairs into
    /// [`QueryOutcome::quality`].
    pub assess: bool,
    /// Cooperative cancellation handle: the pipeline checks it at phase
    /// boundaries and aborts with
    /// [`CoreError::Cancelled`](crate::CoreError::Cancelled) or
    /// [`CoreError::DeadlineExceeded`](crate::CoreError::DeadlineExceeded).
    /// Defaults to [`CancelToken::never`].
    pub cancel: CancelToken,
    /// Mid-flight cost observer: fired with the enumerated related-pair
    /// count so an admission controller can refund the difference between
    /// its pre-execution estimate and the actual work.
    pub cost_probe: Option<CostProbe>,
}

impl QueryRequest {
    /// A request from PXQL text.
    pub fn text(query: impl Into<String>) -> Self {
        QueryRequest::from_input(QueryInput::Text(query.into()))
    }

    /// A request from a parsed query.
    pub fn parsed(query: PxqlQuery) -> Self {
        QueryRequest::from_input(QueryInput::Parsed(query))
    }

    /// A request from a bound query.
    pub fn bound(query: BoundQuery) -> Self {
        QueryRequest::from_input(QueryInput::Bound(query))
    }

    fn from_input(query: QueryInput) -> Self {
        QueryRequest {
            query,
            pair: None,
            config: None,
            extend_despite: false,
            narrate: false,
            assess: false,
            cancel: CancelToken::never(),
            cost_probe: None,
        }
    }

    /// Sets the pair of interest.
    pub fn with_pair(mut self, left: impl Into<String>, right: impl Into<String>) -> Self {
        self.pair = Some((left.into(), right.into()));
        self
    }

    /// Overrides the service configuration for this query.
    pub fn with_config(mut self, config: ExplainConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Requests automatic despite-clause extension.
    pub fn with_despite_extension(mut self) -> Self {
        self.extend_despite = true;
        self
    }

    /// Requests a plain-English narration of the explanation.
    pub fn with_narration(mut self) -> Self {
        self.narrate = true;
        self
    }

    /// Requests precision / generality / relevance scores.
    pub fn with_assessment(mut self) -> Self {
        self.assess = true;
        self
    }

    /// Attaches a cancellation token; the requester keeps a clone and can
    /// abort the query while it runs.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Bounds the query by a deadline `timeout` from now (a shorthand for
    /// [`QueryRequest::with_cancel`] over
    /// [`CancelToken::with_timeout`]).
    pub fn with_timeout(self, timeout: std::time::Duration) -> Self {
        self.with_cancel(CancelToken::with_timeout(timeout))
    }

    /// Attaches a mid-flight cost observer (see [`CostProbe`]).
    pub fn with_cost_probe(mut self, probe: CostProbe) -> Self {
        self.cost_probe = Some(probe);
        self
    }

    /// Resolves the request into a bound query.
    fn resolve(&self) -> Result<BoundQuery> {
        let parsed = match &self.query {
            QueryInput::Text(text) => pxql::parse_query(text)?,
            QueryInput::Parsed(query) => query.clone(),
            QueryInput::Bound(bound) => {
                let mut bound = bound.clone();
                if let Some((left, right)) = &self.pair {
                    bound.left_id = left.clone();
                    bound.right_id = right.clone();
                }
                return Ok(bound);
            }
        };
        match &self.pair {
            Some((left, right)) => Ok(BoundQuery::new(parsed, left.clone(), right.clone())),
            None => BoundQuery::from_query(parsed),
        }
    }
}

/// Everything one service call produces.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The generated explanation (despite extension + because clause).
    pub explanation: Explanation,
    /// The query that was ultimately explained (despite clause possibly
    /// extended).
    pub query: BoundQuery,
    /// Plain-English rendering, when requested.
    pub narration: Option<String>,
    /// Metric estimates over the related pairs, when requested.
    pub quality: Option<ExplanationQuality>,
    /// Log generation the answer was computed against.
    pub generation: u64,
    /// Whether the columnar view came from the service cache (`false` for
    /// the call that built it).
    pub view_reused: bool,
    /// How many related pairs the final training set was enumerated from —
    /// the query's *actual* dominant cost, versus the candidate-space upper
    /// bound [`CostEstimate::scanned_pairs`] charged at admission.
    pub related_pairs: u64,
}

/// A pre-execution cost estimate of one query, derived from the compiled
/// plan's statistics by [`XplainService::estimate_cost`].  Admission
/// controllers charge [`CostEstimate::units`] against a concurrent-cost
/// budget; the raw components are kept so callers can weigh them
/// differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostEstimate {
    /// Records of the query's kind in the served log.
    pub rows: u64,
    /// Ordered candidate pairs the enumeration will classify (already
    /// clamped by the plan's `max_candidate_pairs` cap).
    pub scanned_pairs: u64,
    /// Sampled training pairs × pair-feature width: the work of encoding
    /// the split-search dataset and growing the clause.
    pub training_cells: u64,
}

impl CostEstimate {
    /// How many classified candidate pairs weigh as much as one cost unit.
    /// 1024 pairs ≈ a few tens of microseconds of classification, so unit
    /// counts stay small integers at interactive log sizes while still
    /// separating cheap and expensive queries by orders of magnitude.
    pub const PAIRS_PER_UNIT: u64 = 1024;

    /// The scalar admission-control cost: total classified-plus-trained
    /// work in [`CostEstimate::PAIRS_PER_UNIT`] chunks, never zero (every
    /// admitted query holds at least one unit of the budget).
    pub fn units(&self) -> u64 {
        (self.scanned_pairs + self.training_cells) / Self::PAIRS_PER_UNIT + 1
    }

    /// The cost re-priced with the measured related-pair count in place of
    /// the candidate-space upper bound, once a [`CostProbe`] has reported
    /// it mid-query.  Admission controllers refund the admitted charge down
    /// to this (never up — the estimate stays the ceiling).
    pub fn refined_units(&self, related_pairs: u64) -> u64 {
        (related_pairs + self.training_cells) / Self::PAIRS_PER_UNIT + 1
    }
}

/// When to fold a live view's tail segment back into its base.
///
/// Delta refreshes keep appended records in a small tail
/// ([`ColumnarLog::tail_rows`]); queries over the tail pay a branch per
/// row access, so an unboundedly growing tail would slowly erode scan
/// speed.  Once a refreshed view's tail reaches `tail_limit` rows the
/// service schedules a background fold ([`ColumnarLog::compacted`]) on the
/// process-wide worker pool — off the query path; queries keep being
/// served from the un-compacted view until the fold lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Tail size (rows) at which a background compaction is scheduled.
    /// `usize::MAX` disables background compaction entirely (the
    /// synchronous [`XplainService::compact_views`] still works).
    pub tail_limit: usize,
}

impl Default for CompactionPolicy {
    /// Defaults to the sharded-build threshold: a tail that large would
    /// have been worth a parallel re-encode anyway.
    fn default() -> Self {
        CompactionPolicy { tail_limit: 8192 }
    }
}

/// Counters describing the view cache's delta-maintenance behaviour,
/// read via [`XplainService::view_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewCacheStats {
    /// Rows held in cached views' immutable base segments.
    pub base_rows: u64,
    /// Rows held in cached views' append tails (not yet compacted).
    pub tail_rows: u64,
    /// Views refreshed by splicing an append tail (O(tail) work).
    pub delta_refreshes: u64,
    /// Views rebuilt from scratch (O(log) work).
    pub full_rebuilds: u64,
    /// Tail segments folded back into their base.
    pub compactions: u64,
    /// Unix timestamp (ms) of the last completed compaction; `0` if none.
    pub last_compaction_unix_ms: u64,
}

/// What [`XplainService::append`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// The log generation after the append.
    pub generation: u64,
    /// How many records were appended.
    pub appended: usize,
    /// Whether the batch reached stable storage before this
    /// acknowledgement: `true` only when an append journal is enabled and
    /// its [`FsyncPolicy`](crate::snapshot::FsyncPolicy) fsynced the frame
    /// (`Always`, or the flush-triggering append under `EveryN`).  A
    /// `false` ack survives a clean shutdown but not a crash before the
    /// next fsync or checkpoint.
    pub durable: bool,
}

/// A cached columnar view stamped with the log generation it reflects.
/// `rows_covered` is the *total* log length (all kinds) when the view was
/// installed: every record of this kind in `records[..rows_covered]` is in
/// the view, so a delta refresh only scans `records[rows_covered..]` —
/// O(appended-since), not O(all rows of the kind).
#[derive(Debug, Clone)]
struct CachedView {
    view: Arc<ColumnarLog>,
    generation: u64,
    rows_covered: usize,
}

/// Shared mutable delta-maintenance state: counters plus the per-kind
/// "compaction in flight" latches (indexed by [`kind_slot`]).  Lives in an
/// `Arc` so background compaction jobs outlive the borrow of the service.
#[derive(Debug, Default)]
struct DeltaStats {
    delta_refreshes: AtomicU64,
    full_rebuilds: AtomicU64,
    compactions: AtomicU64,
    compacting: [AtomicBool; 2],
    last_compaction_unix_ms: AtomicU64,
}

fn kind_slot(kind: ExecutionKind) -> usize {
    match kind {
        ExecutionKind::Job => 0,
        ExecutionKind::Task => 1,
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Where the served log was last checkpointed, and how many records the
/// checkpoint covers.  Present only while *every* mutation since has been
/// an append — [`XplainService::with_log_mut`] / `replace_log` clear it —
/// so [`XplainService::checkpoint`] can persist just `records[rows..]` as
/// an incremental shard instead of re-encoding the world.
#[derive(Debug, Clone)]
struct CheckpointState {
    dir: std::path::PathBuf,
    rows: usize,
}

/// What a journal replay left behind, kept so a later
/// [`XplainService::enable_journal`] for the same directory can *resume*
/// the journal (cursor after the last valid frame, replay counters seeded)
/// instead of resetting it — a reset would discard replayed frames that no
/// checkpoint has absorbed yet.
#[derive(Debug)]
struct JournalSeed {
    dir: std::path::PathBuf,
    replay: crate::snapshot::JournalReplay,
    frames_applied: u64,
    /// Log length once the replay finished: journal frames cover exactly
    /// `records[..rows_covered]` beyond the manifest.
    rows_covered: usize,
}

/// Wraps a snapshot write into `dir` with the journal rotation protocol
/// when the service journals into that directory: flush and stage the next
/// journal generation **before** the manifest commits (a crash in between
/// still finds the old journal covering the old manifest's tail), swap it
/// in only after.  A failed write aborts the staged rotation and leaves
/// the old journal authoritative.  A failed *swap* after the manifest
/// committed deactivates journaling: the commit already unlinked the old
/// `journal.bin`, so a handle stuck on the old inode would keep acking
/// durability recovery could never find.
fn with_journal_rotation(
    journal: &mut Option<crate::snapshot::Journal>,
    dir: &std::path::Path,
    write: impl FnOnce() -> Result<crate::snapshot::SyncReport>,
) -> Result<crate::snapshot::SyncReport> {
    if !matches!(journal.as_ref(), Some(j) if j.dir() == dir) {
        return write();
    }
    let j = journal.as_mut().expect("matched Some above");
    j.sync()?;
    j.begin_rotation()?;
    match write() {
        Ok(report) => {
            if let Err(err) = j.commit_rotation(report.manifest.generation) {
                *journal = None;
                return Err(err);
            }
            Ok(report)
        }
        Err(err) => {
            j.abort_rotation();
            Err(err)
        }
    }
}

/// A long-lived, thread-safe PerfXplain query service.
///
/// ```
/// use perfxplain_core::{
///     ExecutionLog, ExecutionRecord, QueryRequest, XplainService,
/// };
///
/// let mut log = ExecutionLog::new();
/// for i in 0..30 {
///     let big_blocks = i % 2 == 0;
///     let input: f64 = if i % 4 < 2 { 32.0e9 } else { 1.0e9 };
///     let duration = if big_blocks { 600.0 } else { input / 5.0e7 };
///     log.push(
///         ExecutionRecord::job(format!("job_{i}"))
///             .with_feature("inputsize", input)
///             .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
///             .with_feature("duration", duration),
///     );
/// }
/// log.rebuild_catalogs();
///
/// let service = XplainService::new(log);
/// let request = QueryRequest::text(
///     "DESPITE inputsize_compare = GT\n\
///      OBSERVED duration_compare = SIM\n\
///      EXPECTED duration_compare = GT",
/// )
/// .with_pair("job_0", "job_2");
///
/// // The first query encodes the log; repeats reuse the cached view.
/// let first = service.explain(&request).unwrap();
/// let second = service.explain(&request).unwrap();
/// assert!(!first.view_reused);
/// assert!(second.view_reused);
/// assert_eq!(first.explanation, second.explanation);
/// ```
#[derive(Debug)]
pub struct XplainService {
    log: RwLock<ExecutionLog>,
    /// At most one live columnar view per execution kind, stamped with the
    /// log generation it reflects.  `Arc`d so background compaction jobs
    /// can re-install a folded view after the service borrow ends.
    views: Arc<RwLock<HashMap<ExecutionKind, CachedView>>>,
    stats: Arc<DeltaStats>,
    compaction: CompactionPolicy,
    checkpoint: Mutex<Option<CheckpointState>>,
    /// The write-ahead append journal, when enabled
    /// ([`XplainService::enable_journal`]).  Locked **before** the log on
    /// every path that touches both, so journal frames and in-memory
    /// appends land in the same order.  Deactivated (set to `None`) by
    /// non-append mutations: journal frames record log positions, and an
    /// arbitrary rewrite invalidates them.
    journal: Mutex<Option<crate::snapshot::Journal>>,
    journal_seed: Mutex<Option<JournalSeed>>,
    engine: PerfXplain,
}

impl XplainService {
    /// Creates a service over the log with the default configuration.
    pub fn new(log: ExecutionLog) -> Self {
        XplainService::with_config(log, ExplainConfig::default())
    }

    /// Creates a service over the log with an explicit configuration.
    pub fn with_config(log: ExecutionLog, config: ExplainConfig) -> Self {
        XplainService {
            log: RwLock::new(log),
            views: Arc::new(RwLock::new(HashMap::new())),
            stats: Arc::new(DeltaStats::default()),
            compaction: CompactionPolicy::default(),
            checkpoint: Mutex::new(None),
            journal: Mutex::new(None),
            journal_seed: Mutex::new(None),
            engine: PerfXplain::new(config),
        }
    }

    /// Overrides the tail-compaction policy (builder style).
    pub fn with_compaction_policy(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = policy;
        self
    }

    /// Rehydrates a service from a snapshot directory with the default
    /// configuration (see
    /// [`XplainService::open_snapshot_with_config`]).
    pub fn open_snapshot(dir: &std::path::Path) -> Result<Self> {
        XplainService::open_snapshot_with_config(dir, ExplainConfig::default())
    }

    /// Rehydrates a service from a snapshot directory
    /// ([`crate::snapshot::open`]): the snapshot is consumed into the log
    /// plus both columnar views in one pass
    /// ([`Snapshot::into_views`](crate::snapshot::Snapshot::into_views)),
    /// moving the decoded `Arc`-backed column buffers into the view cache
    /// instead of cloning them — the service starts **warm** at a peak
    /// memory of roughly the final views, and its first query hits the
    /// cache instead of paying a JSON parse and a full re-encode.
    pub fn open_snapshot_with_config(dir: &std::path::Path, config: ExplainConfig) -> Result<Self> {
        let snapshot = crate::snapshot::open(dir)?;
        let service = Self::from_snapshot(snapshot, config);
        // The directory we just opened *is* a checkpoint of the served log:
        // future `checkpoint` calls only need to persist appended records.
        let rows = service.with_log(|log| log.len());
        *service.checkpoint.lock().expect("checkpoint lock poisoned") = Some(CheckpointState {
            dir: dir.to_path_buf(),
            rows,
        });
        // Replay the append journal over the manifest: acknowledged batches
        // the last checkpoint missed splice back in through the delta path,
        // so the restart resumes with the tail already served and warm.
        service.replay_journal(dir)?;
        Ok(service)
    }

    /// Rehydrates a service from a snapshot directory **leniently**
    /// ([`crate::snapshot::open_salvage`]): damaged segments are
    /// quarantined (renamed aside, never deleted) and the service starts
    /// warm over the healthy shards, returning the
    /// [`ShardDamage`](crate::snapshot::ShardDamage) report so the caller
    /// can schedule a targeted re-encode ([`crate::snapshot::sync`] with
    /// only the damaged shards fresh) — or escalate to a full re-ingest if
    /// the source is gone.  The report is empty when the store was fully
    /// healthy, in which case the result equals
    /// [`XplainService::open_snapshot_with_config`].
    ///
    /// Fails only when the manifest itself is unusable or *no* shard
    /// survived — an all-damaged store has nothing to serve.
    pub fn open_snapshot_salvage_with_config(
        dir: &std::path::Path,
        config: ExplainConfig,
    ) -> Result<(Self, Vec<crate::snapshot::ShardDamage>)> {
        let partial = crate::snapshot::open_salvage(dir)?;
        let damage = partial.quarantined().to_vec();
        if partial.healthy_shards() == 0 {
            let first = damage
                .first()
                .map(|d| d.error.to_string())
                .unwrap_or_else(|| "manifest lists no shards".to_string());
            return Err(crate::error::CoreError::SnapshotCorrupt {
                path: dir.display().to_string(),
                message: format!("no healthy shards to salvage (first damage: {first})"),
            });
        }
        let service = Self::from_snapshot(partial.into_snapshot(), config);
        // Replay the journal over whatever survived.  Frames record
        // absolute log positions, so when quarantined shards punched holes
        // in the row space the positions no longer line up and the replay
        // conservatively stops at the first gap — salvage never splices
        // records against the wrong base.  A fully healthy store replays
        // exactly like the strict path.
        service.replay_journal(dir)?;
        Ok((service, damage))
    }

    /// [`XplainService::open_snapshot_salvage_with_config`] with the
    /// default configuration.
    pub fn open_snapshot_salvage(
        dir: &std::path::Path,
    ) -> Result<(Self, Vec<crate::snapshot::ShardDamage>)> {
        Self::open_snapshot_salvage_with_config(dir, ExplainConfig::default())
    }

    /// Builds a warm service from an already-loaded snapshot (strict or
    /// salvaged): views pre-cached, decoded column buffers moved in.
    fn from_snapshot(snapshot: crate::snapshot::Snapshot, config: ExplainConfig) -> Self {
        let crate::snapshot::SnapshotViews { log, job, task } = snapshot.into_views();
        let mut views = HashMap::new();
        for view in [job, task] {
            if view.num_rows() > 0 {
                views.insert(
                    view.kind(),
                    CachedView {
                        view: Arc::new(view),
                        generation: log.generation(),
                        rows_covered: log.len(),
                    },
                );
            }
        }
        XplainService {
            log: RwLock::new(log),
            views: Arc::new(RwLock::new(views)),
            stats: Arc::new(DeltaStats::default()),
            compaction: CompactionPolicy::default(),
            checkpoint: Mutex::new(None),
            journal: Mutex::new(None),
            journal_seed: Mutex::new(None),
            engine: PerfXplain::new(config),
        }
    }

    /// Persists the served log as a segmented snapshot
    /// ([`crate::snapshot::persist`]), one segment per hardware thread, so
    /// the next cold start can [`XplainService::open_snapshot`] instead of
    /// re-parsing JSON.  Runs under the read lock; concurrent queries keep
    /// being served.
    pub fn persist(&self, dir: &std::path::Path) -> Result<crate::snapshot::SyncReport> {
        let mut journal = self.journal.lock().expect("journal lock poisoned");
        let log = self.read_log();
        let report = with_journal_rotation(&mut journal, dir, || {
            crate::snapshot::persist(&log, dir, crate::shard::hardware_threads())
        })?;
        *self.checkpoint.lock().expect("checkpoint lock poisoned") = Some(CheckpointState {
            dir: dir.to_path_buf(),
            rows: log.len(),
        });
        *self
            .journal_seed
            .lock()
            .expect("journal seed lock poisoned") = None;
        Ok(report)
    }

    /// Persists the served log into `dir` **incrementally when possible**:
    /// if `dir` is the directory the log was last opened from or persisted
    /// to, and only appends happened since, the appended suffix is written
    /// as one ordinary incremental shard ([`crate::snapshot::sync_append`])
    /// while every existing shard is kept verbatim — a serving process
    /// checkpoints its live tail without a stop-the-world re-encode.  Any
    /// other history (a different directory, a non-append mutation) falls
    /// back to a full [`XplainService::persist`].  Runs under the read
    /// lock; concurrent queries keep being served.
    pub fn checkpoint(&self, dir: &std::path::Path) -> Result<crate::snapshot::SyncReport> {
        let mut journal = self.journal.lock().expect("journal lock poisoned");
        let log = self.read_log();
        let mut state = self.checkpoint.lock().expect("checkpoint lock poisoned");
        let incremental_from = match &*state {
            Some(s) if s.dir == dir && s.rows <= log.len() => Some(s.rows),
            _ => None,
        };
        let report = with_journal_rotation(&mut journal, dir, || match incremental_from {
            Some(rows) => crate::snapshot::sync_append(dir, log.records()[rows..].to_vec()),
            None => crate::snapshot::persist(&log, dir, crate::shard::hardware_threads()),
        })?;
        *state = Some(CheckpointState {
            dir: dir.to_path_buf(),
            rows: log.len(),
        });
        *self
            .journal_seed
            .lock()
            .expect("journal seed lock poisoned") = None;
        Ok(report)
    }

    /// The service-wide configuration (requests can override per query).
    pub fn config(&self) -> &ExplainConfig {
        self.engine.config()
    }

    /// The current generation of the served log.
    pub fn generation(&self) -> u64 {
        self.read_log().generation()
    }

    /// A clone of the served log.
    pub fn snapshot(&self) -> ExecutionLog {
        self.read_log().clone()
    }

    /// Runs `f` against the served log under the read lock.
    pub fn with_log<R>(&self, f: impl FnOnce(&ExecutionLog) -> R) -> R {
        f(&self.read_log())
    }

    /// Mutates the served log under the write lock.  Any mutation bumps the
    /// log's generation, so cached views of the previous state are evicted
    /// and the next query re-encodes.
    ///
    /// Use [`XplainService::with_log`] for read-only access: this method
    /// drops the whole view cache unconditionally.  Cached views always
    /// belong to generations at or below the pre-closure one, so nothing
    /// can survive an ordinary mutation — and a closure that swaps in a
    /// *different* log whose counter happens to collide with a cached key
    /// must not resurrect a stale view either.
    pub fn with_log_mut<R>(&self, f: impl FnOnce(&mut ExecutionLog) -> R) -> R {
        // Journal frames record log positions; an arbitrary rewrite
        // invalidates them, so journaling deactivates (the file stays on
        // disk — its frames still describe acked history against the old
        // manifest, which is what a crash before the next checkpoint needs).
        let mut journal = self.journal.lock().expect("journal lock poisoned");
        *journal = None;
        *self
            .journal_seed
            .lock()
            .expect("journal seed lock poisoned") = None;
        let mut log = self.log.write().expect("log lock poisoned");
        let result = f(&mut log);
        self.views
            .write()
            .expect("view cache lock poisoned")
            .clear();
        // Arbitrary mutation invalidates the append-only checkpoint lineage.
        *self.checkpoint.lock().expect("checkpoint lock poisoned") = None;
        result
    }

    /// Replaces the served log wholesale, dropping every cached view (the
    /// new log's generation counter is unrelated to the old one's).  Like
    /// [`XplainService::with_log_mut`] this deactivates the append journal.
    pub fn replace_log(&self, log: ExecutionLog) {
        let mut journal = self.journal.lock().expect("journal lock poisoned");
        *journal = None;
        *self
            .journal_seed
            .lock()
            .expect("journal seed lock poisoned") = None;
        let mut guard = self.log.write().expect("log lock poisoned");
        *guard = log;
        self.views
            .write()
            .expect("view cache lock poisoned")
            .clear();
        *self.checkpoint.lock().expect("checkpoint lock poisoned") = None;
    }

    /// Appends records to the served log **without dropping the view
    /// cache** — the cheap ingest path for a serving process.  The log's
    /// catalogs are kept exact incrementally ([`ExecutionLog::append`]);
    /// cached views survive whenever their kind's schema was unchanged by
    /// the batch (the common case) and the next query refreshes them in
    /// O(batch) by splicing a tail segment instead of re-encoding the log.
    /// With an append journal enabled ([`XplainService::enable_journal`])
    /// the batch is framed and written to `journal.bin` **before** the
    /// in-memory append — a journal error means nothing was appended and
    /// nothing may be acknowledged.  [`AppendOutcome::durable`] reports
    /// whether the frame was fsynced under the journal's policy.
    pub fn append(&self, records: Vec<ExecutionRecord>) -> Result<AppendOutcome> {
        let mut journal = self.journal.lock().expect("journal lock poisoned");
        let durable = match journal.as_mut() {
            Some(j) => {
                let start_rows = self.read_log().len() as u64;
                match j.append_batch(start_rows, &records) {
                    Ok(durable) => durable,
                    Err(err) => {
                        // A failed append normally scrubs its frame and the
                        // journal stays live; if the scrub itself failed an
                        // unacknowledged frame is stuck at the acked cursor
                        // and any later frame would be shadowed by it on
                        // replay — stop journaling rather than desync.
                        if j.is_broken() {
                            *journal = None;
                        }
                        return Err(err);
                    }
                }
            }
            None => false,
        };
        Ok(self.append_in_memory(records, durable))
    }

    /// The in-memory half of an append: extend the log and retain only the
    /// cached views whose kind saw no schema change.  Callers hold the
    /// journal mutex (or know no journal exists), so journal frames and
    /// log positions stay in lockstep.
    fn append_in_memory(&self, records: Vec<ExecutionRecord>, durable: bool) -> AppendOutcome {
        let appended = records.len();
        let mut log = self.log.write().expect("log lock poisoned");
        let generation = log.append(records);
        // Only views whose kind saw a schema change (rewrite watermark
        // bumped past them) are stale beyond delta repair.
        self.views
            .write()
            .expect("view cache lock poisoned")
            .retain(|kind, entry| entry.generation >= log.rewrite_generation(*kind));
        AppendOutcome {
            generation,
            appended,
            durable,
        }
    }

    /// Enables the write-ahead append journal in `dir`: every subsequent
    /// [`XplainService::append`] frames the batch into
    /// `dir/journal.bin` before it is acknowledged, under `policy`
    /// ([`FsyncPolicy`](crate::snapshot::FsyncPolicy)).  Requires checkpoint
    /// lineage for `dir` (the log was opened from, persisted to, or
    /// checkpointed into it, with only appends since) — journal frames
    /// record positions relative to that directory's manifest, so an
    /// unanchored enable fails with
    /// [`CoreError::JournalNotAnchored`](crate::CoreError::JournalNotAnchored).
    ///
    /// When the service was just opened from `dir` and replayed its
    /// journal, the journal **resumes** after the last valid frame instead
    /// of resetting, so replayed-but-not-yet-checkpointed frames keep
    /// covering their records.  Records appended between the checkpoint and
    /// this call are caught up into the journal immediately.
    pub fn enable_journal(
        &self,
        dir: &std::path::Path,
        policy: crate::snapshot::FsyncPolicy,
    ) -> Result<()> {
        let mut journal = self.journal.lock().expect("journal lock poisoned");
        let checkpoint_rows = {
            let state = self.checkpoint.lock().expect("checkpoint lock poisoned");
            match &*state {
                Some(s) if s.dir == dir => s.rows,
                _ => {
                    return Err(crate::error::CoreError::JournalNotAnchored {
                        path: dir.display().to_string(),
                    })
                }
            }
        };
        let mut seed = self
            .journal_seed
            .lock()
            .expect("journal seed lock poisoned");
        let (mut new, covered) = match seed.take() {
            Some(s) if s.dir == dir => {
                let journal =
                    crate::snapshot::Journal::resume(dir, policy, &s.replay, s.frames_applied)?;
                (journal, s.rows_covered)
            }
            other => {
                *seed = other;
                (
                    crate::snapshot::Journal::create(dir, policy)?,
                    checkpoint_rows,
                )
            }
        };
        drop(seed);
        // Catch up: records acked since the journal's coverage ends (e.g.
        // appended before this call) get one bridging frame, so a crash
        // from here on loses nothing the policy promised.
        {
            let log = self.read_log();
            if log.len() > covered {
                new.append_batch(covered as u64, &log.records()[covered..])?;
            }
        }
        *journal = Some(new);
        Ok(())
    }

    /// Flushes any journal frames not yet fsynced (a no-op without a
    /// journal or when nothing is pending) — the pre-shutdown complement
    /// to [`FsyncPolicy::EveryN`](crate::snapshot::FsyncPolicy) and
    /// [`FsyncPolicy::OnCheckpoint`](crate::snapshot::FsyncPolicy).
    pub fn sync_journal(&self) -> Result<()> {
        match self.journal.lock().expect("journal lock poisoned").as_mut() {
            Some(journal) => journal.sync(),
            None => Ok(()),
        }
    }

    /// Journal health counters for the status probe, `None` while no
    /// journal is enabled.
    pub fn journal_stats(&self) -> Option<crate::snapshot::JournalStats> {
        self.journal
            .lock()
            .expect("journal lock poisoned")
            .as_ref()
            .map(|journal| journal.stats())
    }

    /// Replays `dir`'s append journal over the just-opened log: acked
    /// batches the last checkpoint missed splice back in through the
    /// regular append path (per-kind delta repair included), and the views
    /// the snapshot pre-cached are refreshed immediately, so the first
    /// query after a restart serves the replayed tail without a rebuild.
    /// Frames record absolute log positions — already-covered frames are
    /// skipped, and a positional gap stops the replay conservatively.
    fn replay_journal(&self, dir: &std::path::Path) -> Result<u64> {
        let mut replay = crate::snapshot::read_journal(dir)?;
        let batches = std::mem::take(&mut replay.batches);
        let mut covered = self.with_log(|log| log.len());
        let mut frames_applied = 0u64;
        for batch in batches {
            let start = batch.start_rows as usize;
            let count = batch.records.len();
            if start.saturating_add(count) <= covered {
                // Already part of the manifest (a crash landed between the
                // checkpoint commit and the journal rotation).
                frames_applied += 1;
                continue;
            }
            if start != covered {
                break; // positional gap: never splice against the wrong base
            }
            self.append_in_memory(batch.records, false);
            covered += count;
            frames_applied += 1;
        }
        // Refresh the views the snapshot pre-cached so the replayed tail is
        // spliced now, off the query path.  Kinds without a cached view
        // stay lazy — warming them here would charge a full build to the
        // open.
        let kinds: Vec<ExecutionKind> = {
            let cache = self.views.read().expect("view cache lock poisoned");
            cache.keys().copied().collect()
        };
        {
            let log = self.read_log();
            for kind in kinds {
                self.view_for(&log, kind);
            }
        }
        *self
            .journal_seed
            .lock()
            .expect("journal seed lock poisoned") = Some(JournalSeed {
            dir: dir.to_path_buf(),
            replay,
            frames_applied,
            rows_covered: covered,
        });
        Ok(frames_applied)
    }

    /// Synchronously folds every cached view's tail into its base
    /// ([`ColumnarLog::compacted`]), returning how many views were
    /// compacted.  The background path ([`CompactionPolicy`]) does the
    /// same off the query path; this is for deterministic tests, benches,
    /// and pre-shutdown housekeeping.
    pub fn compact_views(&self) -> usize {
        let mut cache = self.views.write().expect("view cache lock poisoned");
        let mut folded = 0;
        for entry in cache.values_mut() {
            if entry.view.tail_rows() > 0 {
                entry.view = Arc::new(entry.view.compacted());
                folded += 1;
            }
        }
        if folded > 0 {
            self.stats
                .compactions
                .fetch_add(folded as u64, Ordering::Relaxed);
            self.stats
                .last_compaction_unix_ms
                .store(unix_ms(), Ordering::Relaxed);
        }
        folded
    }

    /// A snapshot of the delta-maintenance counters and the cached views'
    /// base/tail row split.
    pub fn view_stats(&self) -> ViewCacheStats {
        let cache = self.views.read().expect("view cache lock poisoned");
        let (base_rows, tail_rows) = cache.values().fold((0u64, 0u64), |(b, t), entry| {
            (
                b + entry.view.base_rows() as u64,
                t + entry.view.tail_rows() as u64,
            )
        });
        ViewCacheStats {
            base_rows,
            tail_rows,
            delta_refreshes: self.stats.delta_refreshes.load(Ordering::Relaxed),
            full_rebuilds: self.stats.full_rebuilds.load(Ordering::Relaxed),
            compactions: self.stats.compactions.load(Ordering::Relaxed),
            last_compaction_unix_ms: self.stats.last_compaction_unix_ms.load(Ordering::Relaxed),
        }
    }

    /// Number of cached columnar views (at most one per execution kind once
    /// the cache is warm).
    pub fn cached_view_count(&self) -> usize {
        self.views.read().expect("view cache lock poisoned").len()
    }

    /// The columnar view of `kind` the service would serve right now:
    /// fetched from the cache, delta-refreshed, or built — exactly the
    /// view the next query of this kind runs against.  Used by the
    /// equivalence proptests and the live-ingest benchmark; queries go
    /// through [`XplainService::explain`].
    pub fn view(&self, kind: ExecutionKind) -> Arc<ColumnarLog> {
        let log = self.read_log();
        self.view_for(&log, kind).0
    }

    /// Answers one query.  The columnar view for the log's current
    /// generation is fetched from the cache or lazily built; everything
    /// else — binding, training, clause generation, optional despite
    /// extension, narration and assessment — happens through the same code
    /// path as the stateless API.
    pub fn explain(&self, request: &QueryRequest) -> Result<QueryOutcome> {
        let bound = request.resolve()?;
        self.explain_resolved(request, &bound)
    }

    /// [`XplainService::explain`] with the query already resolved (the
    /// batch path resolves once up front).
    fn explain_resolved(&self, request: &QueryRequest, bound: &BoundQuery) -> Result<QueryOutcome> {
        let log = self.read_log();
        let (view, view_reused) = self.view_for(&log, bound.kind);
        let engine;
        let engine = match &request.config {
            Some(config) => {
                engine = PerfXplain::new(config.clone());
                &engine
            }
            None => &self.engine,
        };
        answer(engine, &log, view, view_reused, bound, request, false)
    }

    /// Answers a slice of requests concurrently over the process-wide
    /// bounded worker pool ([`crate::pool::shared`]) — the same fixed
    /// threads that back every batch in the process, instead of a fresh
    /// `std::thread::scope` fan-out per call — all workers sharing the
    /// cached view of the current log generation.  Results come back in
    /// request order; each is exactly what [`XplainService::explain`] would
    /// have produced serially.
    pub fn par_explain_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryOutcome>> {
        if requests.len() <= 1 {
            return requests.iter().map(|r| self.explain(r)).collect();
        }
        // Resolve every request once, and warm the view cache per distinct
        // kind up front so the workers share one encoding instead of racing
        // to build it.
        let resolved: Vec<Result<BoundQuery>> = requests.iter().map(|r| r.resolve()).collect();
        {
            let log = self.read_log();
            let mut warmed = Vec::new();
            for bound in resolved.iter().flatten() {
                if !warmed.contains(&bound.kind) {
                    self.view_for(&log, bound.kind);
                    warmed.push(bound.kind);
                }
            }
        }
        let jobs: Vec<(&QueryRequest, &Result<BoundQuery>)> =
            requests.iter().zip(&resolved).collect();
        let pool = crate::pool::shared();
        pool.map_chunks(&jobs, pool.threads(), |chunk| {
            chunk
                .iter()
                .map(|(request, bound)| match bound {
                    Ok(bound) => self.explain_resolved(request, bound),
                    Err(err) => Err(err.clone()),
                })
                .collect::<Vec<Result<QueryOutcome>>>()
        })
        .concat()
    }

    /// Estimates what answering `request` will cost **without building a
    /// view or scanning the log's features** — cheap enough to run at
    /// admission time on every incoming request.  The estimate follows the
    /// compiled plan's own statistics: the candidate space the enumeration
    /// will classify (every ordered pair of the query's kind, clamped by
    /// the `max_candidate_pairs` cap that bounds the real scan) plus the
    /// training work over the sampled pairs (sample size × pair-feature
    /// width derived from the kind's catalog).  Blocked plans scan fewer
    /// pairs than this upper bound, so admission control over-charges them
    /// — the conservative direction for a load-shedding gate.
    pub fn estimate_cost(&self, request: &QueryRequest) -> Result<CostEstimate> {
        let bound = request.resolve()?;
        let config = request.config.as_ref().unwrap_or_else(|| self.config());
        let log = self.read_log();
        let rows = log.rows_of_kind(bound.kind) as u64;
        let scanned_pairs = (rows * rows.saturating_sub(1)).min(config.max_candidate_pairs as u64);
        // Each raw feature fans out into a small constant number of pair
        // features; the catalog length is the right scale factor.
        let features = log.catalog(bound.kind).len().max(1) as u64;
        let training_cells = (config.sample_size as u64).min(scanned_pairs) * features;
        Ok(CostEstimate {
            rows,
            scanned_pairs,
            training_cells,
        })
    }

    /// The single-shot pass behind the stateless [`PerfXplain`] API: build
    /// a fresh view for this one query, then answer through the exact same
    /// code path as a cached service query.  Preconditions are checked
    /// before the view is built, so invalid queries fail without paying for
    /// an encoding.
    pub(crate) fn answer_once(
        engine: &PerfXplain,
        log: &ExecutionLog,
        query: &BoundQuery,
        extend_despite: bool,
    ) -> Result<QueryOutcome> {
        query.verify_preconditions(log, engine.config().sim_threshold)?;
        let view = Arc::new(ColumnarLog::build_auto(log, query.kind));
        let request = QueryRequest {
            query: QueryInput::Bound(query.clone()),
            pair: None,
            config: None,
            extend_despite,
            narrate: false,
            assess: false,
            cancel: CancelToken::never(),
            cost_probe: None,
        };
        answer(engine, log, view, false, query, &request, true)
    }

    fn read_log(&self) -> std::sync::RwLockReadGuard<'_, ExecutionLog> {
        self.log.read().expect("log lock poisoned")
    }

    /// Fetches (or lazily refreshes) the columnar view for the log's
    /// current generation.
    ///
    /// Staleness comes in two flavours.  A cached view whose generation
    /// trails the log's but is still at or past the kind's **rewrite
    /// watermark** is *stale by delta*: everything it missed was a pure
    /// append, so it is refreshed in O(tail) by splicing the fresh records
    /// into a tail segment ([`ColumnarLog::with_appended`]) that shares
    /// the base buffers by `Arc`.  A view behind the watermark is *stale
    /// by rewrite* and is rebuilt from scratch
    /// ([`ColumnarLog::build_auto`] — parallel shards for large logs,
    /// bit-identical to the single-shot encode).
    ///
    /// Builds run **outside** the cache lock: the caller holds the log
    /// read lock, so the log is frozen and two racing builds for the same
    /// generation produce identical views — whichever installs first wins.
    fn view_for(&self, log: &ExecutionLog, kind: ExecutionKind) -> (Arc<ColumnarLog>, bool) {
        let generation = log.generation();
        let delta_base = {
            let cache = self.views.read().expect("view cache lock poisoned");
            match cache.get(&kind) {
                Some(entry) if entry.generation == generation => {
                    return (entry.view.clone(), true);
                }
                Some(entry) if entry.generation >= log.rewrite_generation(kind) => {
                    Some((entry.view.clone(), entry.rows_covered))
                }
                _ => None,
            }
        };
        let (view, reused) = match delta_base {
            Some((prev, covered)) => {
                // Appends only extend the record list, so the cached view
                // holds every record of this kind in `records[..covered]`
                // and the per-kind row count tells in O(1) whether any
                // arrived since — an interleaved append storm of the
                // *other* kind costs this kind neither a scan nor a splice.
                if log.rows_of_kind(kind) == prev.num_rows() {
                    (prev, true)
                } else {
                    let fresh: Vec<&ExecutionRecord> = log.records()[covered..]
                        .iter()
                        .filter(|record| record.kind == kind)
                        .collect();
                    let spliced = Arc::new(prev.with_appended(log.catalog(kind), &fresh));
                    self.stats.delta_refreshes.fetch_add(1, Ordering::Relaxed);
                    (spliced, false)
                }
            }
            None => {
                let built = Arc::new(ColumnarLog::build_auto(log, kind));
                self.stats.full_rebuilds.fetch_add(1, Ordering::Relaxed);
                (built, false)
            }
        };
        let installed = {
            let mut cache = self.views.write().expect("view cache lock poisoned");
            let entry = cache.entry(kind).or_insert_with(|| CachedView {
                view: view.clone(),
                generation,
                rows_covered: log.len(),
            });
            if entry.generation != generation {
                *entry = CachedView {
                    view: view.clone(),
                    generation,
                    rows_covered: log.len(),
                };
            }
            // A racing query may have installed this generation already;
            // both views are identical, keep the first.
            entry.view.clone()
        };
        self.maybe_schedule_compaction(kind, generation, &installed);
        (installed, reused)
    }

    /// Schedules a background tail fold for `view` when its tail has
    /// outgrown the [`CompactionPolicy`].  The job runs on the
    /// process-wide worker pool and re-installs the folded view only if
    /// the cache entry is still exactly the view it folded — a newer
    /// generation or a concurrent compaction simply wins.
    fn maybe_schedule_compaction(
        &self,
        kind: ExecutionKind,
        generation: u64,
        view: &Arc<ColumnarLog>,
    ) {
        if view.tail_rows() < self.compaction.tail_limit {
            return;
        }
        let slot = kind_slot(kind);
        if self.stats.compacting[slot].swap(true, Ordering::AcqRel) {
            return; // one fold in flight per kind
        }
        let stats = Arc::clone(&self.stats);
        let views = Arc::clone(&self.views);
        let view = Arc::clone(view);
        crate::pool::shared().execute(move || {
            let folded = Arc::new(view.compacted());
            {
                let mut cache = views.write().expect("view cache lock poisoned");
                if let Some(entry) = cache.get_mut(&kind) {
                    if entry.generation == generation && Arc::ptr_eq(&entry.view, &view) {
                        entry.view = folded;
                        stats.compactions.fetch_add(1, Ordering::Relaxed);
                        stats
                            .last_compaction_unix_ms
                            .store(unix_ms(), Ordering::Relaxed);
                    }
                }
            }
            stats.compacting[slot].store(false, Ordering::Release);
        });
    }
}

/// The one code path every query goes through: explain (optionally with the
/// automatic despite extension) against a shared view, then narrate and
/// assess on demand.  `preconditions_verified` is `true` only on the
/// single-shot path, which checks preconditions *before* paying for an
/// encoding and must not pay for the check twice.
fn answer(
    engine: &PerfXplain,
    log: &ExecutionLog,
    view: Arc<ColumnarLog>,
    view_reused: bool,
    bound: &BoundQuery,
    request: &QueryRequest,
    preconditions_verified: bool,
) -> Result<QueryOutcome> {
    let (explanation, effective, training) = engine.explain_with_training(
        log,
        view,
        bound,
        request.extend_despite,
        preconditions_verified,
        &request.cancel,
        request.cost_probe.as_ref(),
    )?;
    let narration = request.narrate.then(|| narrate(bound, &explanation));
    // Assessment reuses the training set the clause was grown from (the
    // seeded sample over the effective query) instead of re-enumerating.
    let quality = request.assess.then(|| {
        assess(
            &training.materialise(engine.config().sim_threshold),
            &explanation,
        )
    });
    Ok(QueryOutcome {
        explanation,
        query: effective,
        narration,
        quality,
        generation: log.generation(),
        view_reused,
        related_pairs: training.related_pairs as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ExecutionRecord;

    /// The block-size log of the engine tests: pairs with larger input have
    /// similar durations exactly when blocks are large and the cluster big.
    fn block_size_log(n: usize) -> ExecutionLog {
        let mut log = ExecutionLog::new();
        for i in 0..n {
            let big_blocks = i % 2 == 0;
            let big_cluster = i % 3 != 0;
            let input: f64 = if i % 4 < 2 { 32.0e9 } else { 1.0e9 };
            let duration = if big_blocks && big_cluster {
                600.0
            } else {
                input / (if big_cluster { 150.0 } else { 4.0 } * 2.0e7)
            };
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("inputsize", input)
                    .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                    .with_feature("numinstances", if big_cluster { 150.0 } else { 4.0 })
                    .with_feature("duration", duration),
            );
        }
        log.rebuild_catalogs();
        log
    }

    const QUERY: &str = "DESPITE inputsize_compare = GT\n\
                         OBSERVED duration_compare = SIM\n\
                         EXPECTED duration_compare = GT";

    fn request() -> QueryRequest {
        QueryRequest::text(QUERY).with_pair("job_4", "job_2")
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XplainService>();
        assert_send_sync::<QueryRequest>();
        assert_send_sync::<QueryOutcome>();
    }

    #[test]
    fn repeated_queries_reuse_the_cached_view() {
        let service = XplainService::new(block_size_log(40));
        let first = service.explain(&request()).unwrap();
        let second = service.explain(&request()).unwrap();
        assert!(!first.view_reused);
        assert!(second.view_reused);
        assert_eq!(first.generation, second.generation);
        assert_eq!(first.explanation, second.explanation);
        assert_eq!(service.cached_view_count(), 1);
    }

    #[test]
    fn service_matches_the_stateless_api() {
        let log = block_size_log(40);
        let service = XplainService::new(log.clone());
        let outcome = service.explain(&request()).unwrap();
        let bound = outcome.query.clone();
        let stateless = PerfXplain::with_defaults().explain(&log, &bound).unwrap();
        assert_eq!(outcome.explanation, stateless);
    }

    #[test]
    fn mutations_bump_the_generation_and_evict_stale_views() {
        let service = XplainService::new(block_size_log(40));
        let before = service.explain(&request()).unwrap();
        assert_eq!(service.cached_view_count(), 1);

        // Mutate the log: push a record and rebuild the catalogs.
        service.with_log_mut(|log| {
            log.push(
                ExecutionRecord::job("job_extra")
                    .with_feature("inputsize", 64.0e9)
                    .with_feature("blocksize", 1024.0)
                    .with_feature("numinstances", 150.0)
                    .with_feature("duration", 600.0),
            );
            log.rebuild_catalogs();
        });
        // The stale view is gone immediately, not lazily.
        assert_eq!(service.cached_view_count(), 0);

        let after = service.explain(&request()).unwrap();
        assert!(after.generation > before.generation);
        assert!(!after.view_reused);

        // The answer matches a fresh engine over the mutated log: the stale
        // view was provably not served.
        let fresh = PerfXplain::with_defaults()
            .explain(&service.snapshot(), &after.query)
            .unwrap();
        assert_eq!(after.explanation, fresh);
    }

    #[test]
    fn wholesale_replacement_with_a_colliding_generation_is_not_served_stale() {
        // Two different logs can share a generation counter value; swapping
        // one in through `with_log_mut` must still drop the cached views.
        let log_a = block_size_log(40);
        let mut log_b = block_size_log(24);
        while log_b.generation() < log_a.generation() {
            log_b.rebuild_catalogs();
        }
        let log_b = log_b; // same generation as log_a, different contents

        let service = XplainService::new(log_a.clone());
        service.explain(&request()).unwrap();
        assert_eq!(service.cached_view_count(), 1);

        assert_eq!(log_b.generation(), log_a.generation());
        service.with_log_mut(|log| *log = log_b.clone());
        assert_eq!(service.cached_view_count(), 0);
        let outcome = service.explain(&request()).unwrap();
        assert!(!outcome.view_reused);
        let fresh = PerfXplain::with_defaults()
            .explain(&log_b, &outcome.query)
            .unwrap();
        assert_eq!(outcome.explanation, fresh);
    }

    #[test]
    fn replace_log_drops_every_cached_view() {
        let service = XplainService::new(block_size_log(40));
        service.explain(&request()).unwrap();
        assert_eq!(service.cached_view_count(), 1);
        service.replace_log(block_size_log(24));
        assert_eq!(service.cached_view_count(), 0);
        let outcome = service.explain(&request()).unwrap();
        assert!(!outcome.view_reused);
        assert_eq!(service.with_log(|log| log.jobs().count()), 24);
    }

    #[test]
    fn requests_carry_narration_assessment_and_overrides() {
        let service = XplainService::new(block_size_log(40));
        let outcome = service
            .explain(
                &request()
                    .with_config(ExplainConfig::default().with_width(2))
                    .with_narration()
                    .with_assessment(),
            )
            .unwrap();
        assert!(outcome.explanation.width() <= 2);
        assert!(outcome.narration.is_some());
        let quality = outcome.quality.expect("assessment requested");
        assert!(quality.precision.unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn invalid_requests_surface_descriptive_errors() {
        let service = XplainService::new(block_size_log(24));
        // Unparseable PXQL.
        assert!(service.explain(&QueryRequest::text("NONSENSE")).is_err());
        // Placeholder bindings without a pair of interest.
        assert!(service.explain(&QueryRequest::text(QUERY)).is_err());
        // Unknown executions.
        assert!(service
            .explain(&QueryRequest::text(QUERY).with_pair("job_4", "nope"))
            .is_err());
    }

    #[test]
    fn cancelled_requests_abort_with_typed_errors() {
        use crate::error::CoreError;
        let service = XplainService::new(block_size_log(40));
        // Fired before submission: the first cooperative check aborts.
        let token = CancelToken::new();
        token.cancel();
        let err = service
            .explain(&request().with_cancel(token))
            .expect_err("cancelled request must not produce an outcome");
        assert_eq!(err, CoreError::Cancelled);
        // An already-expired deadline surfaces as the timeout error.
        let err = service
            .explain(&request().with_timeout(std::time::Duration::ZERO))
            .expect_err("expired request must not produce an outcome");
        assert_eq!(err, CoreError::DeadlineExceeded);
        // A generous deadline leaves the answer untouched.
        let outcome = service
            .explain(&request().with_timeout(std::time::Duration::from_secs(3600)))
            .unwrap();
        assert_eq!(
            outcome.explanation,
            service.explain(&request()).unwrap().explanation
        );
    }

    #[test]
    fn cost_estimates_follow_the_plan_statistics() {
        let service = XplainService::new(block_size_log(40));
        let estimate = service.estimate_cost(&request()).unwrap();
        assert_eq!(estimate.rows, 40);
        assert_eq!(estimate.scanned_pairs, 40 * 39);
        assert!(estimate.training_cells > 0);
        assert!(estimate.units() >= 1);
        // No view is built by estimation.
        assert_eq!(service.cached_view_count(), 0);

        // A bigger log costs more; the candidate cap bounds the estimate
        // exactly like it bounds the real scan.
        let big = XplainService::new(block_size_log(2000));
        let uncapped = big.estimate_cost(&request()).unwrap();
        assert!(uncapped.units() > estimate.units());
        let capped = big
            .estimate_cost(&request().with_config(ExplainConfig {
                max_candidate_pairs: 10_000,
                ..ExplainConfig::default()
            }))
            .unwrap();
        assert_eq!(capped.scanned_pairs, 10_000);
        assert!(capped.units() < uncapped.units());
        // Unresolvable queries fail at estimation, not at admission.
        assert!(service
            .estimate_cost(&QueryRequest::text("NONSENSE"))
            .is_err());
    }

    /// More records shaped like [`block_size_log`]'s, for appending.
    fn extra_jobs(start: usize, n: usize) -> Vec<ExecutionRecord> {
        (start..start + n)
            .map(|i| {
                let big_blocks = i % 2 == 0;
                let big_cluster = i % 3 != 0;
                let input: f64 = if i % 4 < 2 { 32.0e9 } else { 1.0e9 };
                let duration = if big_blocks && big_cluster {
                    600.0
                } else {
                    input / (if big_cluster { 150.0 } else { 4.0 } * 2.0e7)
                };
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("inputsize", input)
                    .with_feature("blocksize", if big_blocks { 1024.0 } else { 64.0 })
                    .with_feature("numinstances", if big_cluster { 150.0 } else { 4.0 })
                    .with_feature("duration", duration)
            })
            .collect()
    }

    #[test]
    fn appends_refresh_the_cached_view_by_delta() {
        let service = XplainService::new(block_size_log(40));
        let before = service.explain(&request()).unwrap();
        assert_eq!(service.view_stats().full_rebuilds, 1);

        let outcome = service.append(extra_jobs(40, 10)).unwrap();
        assert_eq!(outcome.appended, 10);
        // The cached view survives the append (schema unchanged) ...
        assert_eq!(service.cached_view_count(), 1);

        let after = service.explain(&request()).unwrap();
        assert!(after.generation > before.generation);
        let stats = service.view_stats();
        assert_eq!(stats.delta_refreshes, 1);
        assert_eq!(stats.full_rebuilds, 1);
        assert_eq!(stats.base_rows, 40);
        assert_eq!(stats.tail_rows, 10);

        // ... and the delta-refreshed answer equals a fresh engine over the
        // grown log: the tail is provably part of the served view.
        let fresh = PerfXplain::with_defaults()
            .explain(&service.snapshot(), &after.query)
            .unwrap();
        assert_eq!(after.explanation, fresh);
        // The next query hits the refreshed view outright.
        assert!(service.explain(&request()).unwrap().view_reused);
    }

    #[test]
    fn appends_with_a_new_feature_fall_back_to_a_full_rebuild() {
        let service = XplainService::new(block_size_log(40));
        service.explain(&request()).unwrap();
        assert_eq!(service.cached_view_count(), 1);

        // A record carrying a feature the job catalog has never seen moves
        // the schema: the cached job view is stale beyond delta repair.
        service
            .append(vec![ExecutionRecord::job("job_oddball")
                .with_feature("inputsize", 1.0e9)
                .with_feature("blocksize", 64.0)
                .with_feature("numinstances", 4.0)
                .with_feature("duration", 10.0)
                .with_feature("brand_new_knob", 7.0)])
            .unwrap();
        assert_eq!(service.cached_view_count(), 0);

        let after = service.explain(&request()).unwrap();
        assert!(!after.view_reused);
        let stats = service.view_stats();
        assert_eq!(stats.full_rebuilds, 2);
        assert_eq!(stats.delta_refreshes, 0);
        let fresh = PerfXplain::with_defaults()
            .explain(&service.snapshot(), &after.query)
            .unwrap();
        assert_eq!(after.explanation, fresh);
    }

    #[test]
    fn compact_views_folds_the_tail_without_changing_answers() {
        let service = XplainService::new(block_size_log(40));
        service.explain(&request()).unwrap();
        service.append(extra_jobs(40, 8)).unwrap();
        let delta = service.explain(&request()).unwrap();
        assert_eq!(service.view_stats().tail_rows, 8);

        assert_eq!(service.compact_views(), 1);
        let stats = service.view_stats();
        assert_eq!(stats.tail_rows, 0);
        assert_eq!(stats.base_rows, 48);
        assert_eq!(stats.compactions, 1);
        assert!(stats.last_compaction_unix_ms > 0);

        // The folded view serves the same generation and the same answer.
        let compacted = service.explain(&request()).unwrap();
        assert!(compacted.view_reused);
        assert_eq!(compacted.explanation, delta.explanation);
        assert_eq!(compacted.generation, delta.generation);
    }

    #[test]
    fn oversized_tails_are_folded_in_the_background() {
        let service = XplainService::new(block_size_log(40))
            .with_compaction_policy(CompactionPolicy { tail_limit: 4 });
        service.explain(&request()).unwrap();
        service.append(extra_jobs(40, 8)).unwrap();
        // This refresh splices an 8-row tail — past the limit, so a
        // background fold is scheduled on the shared pool.
        service.explain(&request()).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while service.view_stats().tail_rows > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "background compaction never landed"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let stats = service.view_stats();
        assert_eq!(stats.base_rows, 48);
        assert!(stats.compactions >= 1);
        // Queries keep working over the folded view.
        assert!(service.explain(&request()).unwrap().view_reused);
    }

    #[test]
    fn queries_report_their_actual_related_pairs_through_the_probe() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let service = XplainService::new(block_size_log(40));
        let observed = Arc::new(AtomicU64::new(u64::MAX));
        let probe_target = Arc::clone(&observed);
        let outcome = service
            .explain(&request().with_cost_probe(CostProbe::new(move |pairs| {
                probe_target.store(pairs, Ordering::SeqCst);
            })))
            .unwrap();
        let fired = observed.load(Ordering::SeqCst);
        assert_ne!(fired, u64::MAX, "probe must fire");
        assert_eq!(fired, outcome.related_pairs);
        // The actual related-pair count is far below the candidate-space
        // upper bound charged at admission.
        let estimate = service.estimate_cost(&request()).unwrap();
        assert!(outcome.related_pairs <= estimate.scanned_pairs);
        assert!(outcome.related_pairs > 0);
    }

    #[test]
    fn checkpoints_persist_the_live_tail_incrementally() {
        let dir = std::env::temp_dir().join(format!("pxsvc_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let service = XplainService::new(block_size_log(40));
        let full = service.persist(&dir).unwrap();
        assert!(full.shards_encoded >= 1);
        let base_shards = full.manifest.shards.len();

        // Appends since the persist → the checkpoint writes one tail shard
        // and keeps every base shard verbatim.
        service.append(extra_jobs(40, 6)).unwrap();
        let incremental = service.checkpoint(&dir).unwrap();
        assert_eq!(incremental.shards_encoded, 1);
        assert_eq!(incremental.shards_reused, base_shards);
        assert_eq!(incremental.rows, 46);

        // The checkpointed store reopens to the served log, bit for bit.
        let reopened = XplainService::open_snapshot(&dir).unwrap();
        assert_eq!(reopened.snapshot(), service.snapshot());

        // A second checkpoint with nothing appended keeps everything.
        let idle = service.checkpoint(&dir).unwrap();
        assert_eq!(idle.shards_encoded, 0);
        assert_eq!(idle.shards_reused, base_shards + 1);

        // An arbitrary mutation invalidates the lineage: the next
        // checkpoint falls back to a full persist.
        service.with_log_mut(|log| log.rebuild_catalogs());
        let rewritten = service.checkpoint(&dir).unwrap();
        assert_eq!(rewritten.shards_reused, 0);
        assert!(rewritten.shards_encoded >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn journal_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pxsvc_jnl_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journal_requires_checkpoint_lineage() {
        use crate::error::CoreError;
        use crate::snapshot::FsyncPolicy;
        let dir = journal_dir("anchor");
        let service = XplainService::new(block_size_log(24));
        // No checkpoint yet: journal frames would have nothing to anchor to.
        let err = service
            .enable_journal(&dir, FsyncPolicy::Always)
            .unwrap_err();
        assert!(matches!(err, CoreError::JournalNotAnchored { .. }));
        // After a persist into the directory, enabling succeeds.
        service.persist(&dir).unwrap();
        service.enable_journal(&dir, FsyncPolicy::Always).unwrap();
        assert!(service.journal_stats().is_some());
        // A non-append mutation deactivates the journal.
        service.with_log_mut(|log| log.rebuild_catalogs());
        assert!(service.journal_stats().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_appends_survive_a_restart_and_reopen_warm() {
        use crate::snapshot::FsyncPolicy;
        let dir = journal_dir("recover");
        let service = XplainService::new(block_size_log(40));
        service.persist(&dir).unwrap();
        service.enable_journal(&dir, FsyncPolicy::Always).unwrap();
        let outcome = service.append(extra_jobs(40, 6)).unwrap();
        assert!(outcome.durable, "fsync=Always must ack durable");
        let outcome = service.append(extra_jobs(46, 4)).unwrap();
        assert!(outcome.durable);
        let stats = service.journal_stats().unwrap();
        assert_eq!(stats.frames_appended, 2);
        assert_eq!(stats.fsyncs, 2);

        // "Crash": drop the service without a checkpoint.  The reopened
        // store replays the journal over the manifest...
        let expected = service.snapshot();
        drop(service);
        let reopened = XplainService::open_snapshot(&dir).unwrap();
        assert_eq!(reopened.snapshot(), expected);
        // ... and the first query is served from the replayed tail: the
        // snapshot's pre-cached view was delta-refreshed, never rebuilt.
        let before = reopened.view_stats();
        assert_eq!(before.full_rebuilds, 0);
        assert_eq!(before.tail_rows, 10);
        let answer = reopened.explain(&request()).unwrap();
        assert!(answer.view_reused);
        assert_eq!(reopened.view_stats().full_rebuilds, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_journal_resumes_and_keeps_protecting_replayed_frames() {
        use crate::snapshot::FsyncPolicy;
        let dir = journal_dir("resume");
        let service = XplainService::new(block_size_log(40));
        service.persist(&dir).unwrap();
        service.enable_journal(&dir, FsyncPolicy::Always).unwrap();
        service.append(extra_jobs(40, 6)).unwrap();
        drop(service);

        // First restart: replay, re-enable (resumes after the replayed
        // frame), append more, crash again without ever checkpointing.
        let restarted = XplainService::open_snapshot(&dir).unwrap();
        restarted.enable_journal(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(restarted.journal_stats().unwrap().frames_replayed, 1);
        restarted.append(extra_jobs(46, 4)).unwrap();
        let expected = restarted.snapshot();
        drop(restarted);

        // Second restart: both the pre-crash frame and the post-restart
        // frame replay — resuming never dropped the first one.
        let recovered = XplainService::open_snapshot(&dir).unwrap();
        assert_eq!(recovered.snapshot(), expected);
        assert_eq!(recovered.with_log(|log| log.len()), 50);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_rotate_the_journal_and_appends_before_enable_catch_up() {
        use crate::snapshot::FsyncPolicy;
        let dir = journal_dir("rotate");
        let service = XplainService::new(block_size_log(40));
        service.persist(&dir).unwrap();
        service
            .enable_journal(&dir, FsyncPolicy::OnCheckpoint)
            .unwrap();
        let outcome = service.append(extra_jobs(40, 6)).unwrap();
        assert!(!outcome.durable, "OnCheckpoint never fsyncs on append");
        let before = service.journal_stats().unwrap();
        assert_eq!(before.frames_appended, 1);

        // The checkpoint absorbs the tail into a segment and rotates the
        // journal: the old frames are gone, the cursor is back at the
        // header, and the rotation generation matches the manifest's.
        let report = service.checkpoint(&dir).unwrap();
        let after = service.journal_stats().unwrap();
        assert!(after.bytes < before.bytes);
        assert_eq!(after.last_rotation_generation, report.manifest.generation);

        // A crash right after the checkpoint loses nothing: the manifest
        // covers everything and the fresh journal is empty.
        let expected = service.snapshot();
        drop(service);
        let reopened = XplainService::open_snapshot(&dir).unwrap();
        assert_eq!(reopened.snapshot(), expected);

        // Records appended before `enable_journal` are bridged into the
        // journal at enable time, so they too survive a crash.
        reopened.append(extra_jobs(46, 3)).unwrap();
        reopened.enable_journal(&dir, FsyncPolicy::Always).unwrap();
        let expected = reopened.snapshot();
        drop(reopened);
        let recovered = XplainService::open_snapshot(&dir).unwrap();
        assert_eq!(recovered.snapshot(), expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interleaved_kind_appends_leave_the_other_kinds_view_untouched() {
        // The mixed-kind append-storm gap: appending tasks must not force
        // the cached job view to rescan (or rebuild over) the job rows.
        let service = XplainService::new(block_size_log(40));
        service.explain(&request()).unwrap();
        assert_eq!(service.view_stats().full_rebuilds, 1);

        for i in 0..5 {
            service
                .append(vec![ExecutionRecord::task(format!("task_{i}"), "job_0")
                    .with_feature("duration", 5.0)])
                .unwrap();
            // The job view answers without a delta splice or rebuild: the
            // per-kind row count shows nothing of its kind arrived.
            let answer = service.explain(&request()).unwrap();
            assert!(answer.view_reused);
        }
        let stats = service.view_stats();
        assert_eq!(stats.full_rebuilds, 1);
        assert_eq!(stats.delta_refreshes, 0);

        // Job appends still delta-refresh as before.
        service.append(extra_jobs(40, 4)).unwrap();
        service.explain(&request()).unwrap();
        let stats = service.view_stats();
        assert_eq!(stats.full_rebuilds, 1);
        assert_eq!(stats.delta_refreshes, 1);
    }

    #[test]
    fn par_explain_batch_matches_the_serial_path() {
        let service = XplainService::new(block_size_log(40));
        let requests: Vec<QueryRequest> = (0..8)
            .map(|i| {
                let (left, right) = if i % 2 == 0 {
                    ("job_4", "job_2")
                } else {
                    ("job_16", "job_2")
                };
                QueryRequest::text(QUERY).with_pair(left, right)
            })
            .collect();
        let serial: Vec<_> = requests.iter().map(|r| service.explain(r)).collect();
        let parallel = service.par_explain_batch(&requests);
        assert_eq!(parallel.len(), serial.len());
        for (s, p) in serial.iter().zip(&parallel) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.explanation, p.explanation);
            assert_eq!(s.query, p.query);
        }
        // One job view serves the whole batch.
        assert_eq!(service.cached_view_count(), 1);
    }
}
