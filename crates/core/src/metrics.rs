//! Explanation-quality metrics: relevance, precision and generality
//! (Definitions 4–6 of the paper).
//!
//! All three metrics are conditional probabilities estimated over the pairs
//! of the log that are *related* to the query (they satisfy the despite
//! clause and either the observed or the expected clause):
//!
//! * `Rel(E)  = P(exp | des' ∧ des)`
//! * `Pr(E)   = P(obs | bec ∧ des' ∧ des)`
//! * `Gen(E)  = P(bec | des' ∧ des)`
//!
//! Precision and generality correspond to the data-mining notions of
//! confidence and support of the because clause within the context of the
//! despite clause.

use crate::explanation::Explanation;
use crate::training::TrainingSet;
use pxql::Predicate;

/// A conditional probability estimate together with the number of pairs that
/// satisfied the condition (its support).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricEstimate {
    /// The estimated probability, or `None` when no pair satisfied the
    /// condition.
    pub value: Option<f64>,
    /// How many pairs satisfied the condition.
    pub support: usize,
}

impl MetricEstimate {
    /// The estimate, or `default` when undefined.
    pub fn unwrap_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// Estimates `P(target | condition)` over the related pairs of `set`, where
/// the target is "performed as observed" (`target_observed = true`) or
/// "performed as expected" (`false`).
pub fn conditional_probability(
    set: &TrainingSet,
    condition: &Predicate,
    target_observed: bool,
) -> MetricEstimate {
    let mut satisfied = 0usize;
    let mut hits = 0usize;
    for (example, observed) in set.iter() {
        if condition.eval(example) {
            satisfied += 1;
            if observed == target_observed {
                hits += 1;
            }
        }
    }
    MetricEstimate {
        value: if satisfied == 0 {
            None
        } else {
            Some(hits as f64 / satisfied as f64)
        },
        support: satisfied,
    }
}

/// Relevance of an explanation: `P(exp | des' ∧ des)`.  The user's `des`
/// clause is already folded into the construction of `set` (only related
/// pairs are present), so only `des'` needs to be applied here.
pub fn relevance(set: &TrainingSet, despite_extension: &Predicate) -> MetricEstimate {
    conditional_probability(set, despite_extension, false)
}

/// Precision of an explanation: `P(obs | bec ∧ des' ∧ des)`.
pub fn precision(set: &TrainingSet, explanation: &Explanation) -> MetricEstimate {
    let condition = explanation.despite.conjoin(&explanation.because);
    conditional_probability(set, &condition, true)
}

/// Generality of an explanation: `P(bec | des' ∧ des)`.
pub fn generality(set: &TrainingSet, explanation: &Explanation) -> MetricEstimate {
    let mut in_context = 0usize;
    let mut satisfied = 0usize;
    for (example, _) in set.iter() {
        if explanation.despite.eval(example) {
            in_context += 1;
            if explanation.because.eval(example) {
                satisfied += 1;
            }
        }
    }
    MetricEstimate {
        value: if in_context == 0 {
            None
        } else {
            Some(satisfied as f64 / in_context as f64)
        },
        support: in_context,
    }
}

/// All three metrics of an explanation at once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplanationQuality {
    /// `Rel(E)`.
    pub relevance: MetricEstimate,
    /// `Pr(E)`.
    pub precision: MetricEstimate,
    /// `Gen(E)`.
    pub generality: MetricEstimate,
}

/// Scores an explanation on a set of related pairs.
pub fn assess(set: &TrainingSet, explanation: &Explanation) -> ExplanationQuality {
    ExplanationQuality {
        relevance: relevance(set, &explanation.despite),
        precision: precision(set, explanation),
        generality: generality(set, explanation),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::PairExample;
    use pxql::{Atom, Value};
    use std::collections::BTreeMap;

    /// Builds a small hand-crafted training set:
    /// 6 pairs, 3 observed / 3 expected; `blocksize_isSame = T` holds for
    /// all observed pairs and one expected pair.
    fn set() -> TrainingSet {
        let mut set = TrainingSet::default();
        let entries = [
            (true, true, 150.0),
            (true, true, 120.0),
            (true, true, 100.0),
            (false, true, 150.0),
            (false, false, 10.0),
            (false, false, 20.0),
        ];
        for (i, (observed, same_block, instances)) in entries.into_iter().enumerate() {
            let features = BTreeMap::from([
                ("blocksize_isSame".to_string(), Value::Bool(same_block)),
                ("numinstances".to_string(), Value::Num(instances)),
            ]);
            set.examples.push(PairExample {
                left_id: format!("l{i}"),
                right_id: format!("r{i}"),
                features,
            });
            set.labels.push(observed);
        }
        set
    }

    #[test]
    fn precision_counts_only_condition_satisfying_pairs() {
        let set = set();
        let expl = Explanation::because_only(Predicate::from_atoms(vec![Atom::eq(
            "blocksize_isSame",
            true,
        )]));
        let p = precision(&set, &expl);
        // 4 pairs satisfy the because clause; 3 of them are observed.
        assert_eq!(p.support, 4);
        assert!((p.unwrap_or(0.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn generality_is_support_within_context() {
        let set = set();
        let expl = Explanation::new(
            Predicate::from_atoms(vec![Atom::new("numinstances", pxql::Op::Ge, 100i64)]),
            Predicate::from_atoms(vec![Atom::eq("blocksize_isSame", true)]),
        );
        let g = generality(&set, &expl);
        // 4 pairs satisfy the despite clause (instances >= 100); all of them
        // also satisfy the because clause.
        assert_eq!(g.support, 4);
        assert!((g.unwrap_or(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relevance_measures_expected_fraction() {
        let set = set();
        // Restricting to small clusters makes "expected" behaviour dominant.
        let despite = Predicate::from_atoms(vec![Atom::new("numinstances", pxql::Op::Lt, 100i64)]);
        let r = relevance(&set, &despite);
        assert_eq!(r.support, 2);
        assert!((r.unwrap_or(0.0) - 1.0).abs() < 1e-12);

        // The empty despite clause has the base-rate relevance of 0.5.
        let empty = relevance(&set, &Predicate::always_true());
        assert!((empty.unwrap_or(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_condition_support_yields_none() {
        let set = set();
        let impossible = Predicate::from_atoms(vec![Atom::eq("blocksize_isSame", "MAYBE")]);
        let estimate = conditional_probability(&set, &impossible, true);
        assert_eq!(estimate.support, 0);
        assert_eq!(estimate.value, None);
        assert_eq!(estimate.unwrap_or(0.3), 0.3);
    }

    #[test]
    fn assess_bundles_all_metrics() {
        let set = set();
        let expl = Explanation::because_only(Predicate::from_atoms(vec![Atom::eq(
            "blocksize_isSame",
            true,
        )]));
        let quality = assess(&set, &expl);
        assert!(quality.precision.value.is_some());
        assert!(quality.generality.value.is_some());
        assert!(quality.relevance.value.is_some());
        // With an empty despite clause relevance is the base rate.
        assert!((quality.relevance.unwrap_or(0.0) - 0.5).abs() < 1e-12);
    }
}
