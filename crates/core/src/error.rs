//! Error type of the PerfXplain core crate.

use std::fmt;

/// Errors surfaced by the explanation engine and the execution-log data
/// model.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A record referenced by a query is not present in the execution log.
    UnknownExecution(String),
    /// The query references executions of a different kind (e.g. a task
    /// query bound to job identifiers).
    KindMismatch {
        /// What the query expects.
        expected: String,
        /// What the identifier resolved to.
        found: String,
    },
    /// The query's semantic preconditions (Definition 1) do not hold for the
    /// pair of interest: the pair must satisfy `des` and `obs` and must not
    /// satisfy `exp`.
    QueryPreconditionViolated(String),
    /// There are not enough related pairs in the log to learn from.
    NotEnoughTrainingPairs {
        /// Pairs that performed as observed.
        observed: usize,
        /// Pairs that performed as expected.
        expected: usize,
    },
    /// The underlying PXQL query was malformed.
    Pxql(String),
    /// An execution log could not be serialized or deserialized.
    Serialization(String),
    /// A snapshot store operation failed at the filesystem level (missing
    /// directory, unreadable or unwritable file).  Transient kinds
    /// (interrupted, would-block, timed-out) have already been retried
    /// with bounded backoff before this surfaces — see
    /// [`SyncReport::io_retries`](crate::snapshot::SyncReport::io_retries).
    SnapshotIo {
        /// The path the operation touched.
        path: String,
        /// The underlying I/O error.
        message: String,
    },
    /// A snapshot file is corrupt: bad magic, truncated content, an
    /// undecodable segment, or a fingerprint that does not match the
    /// manifest.  Corruption is always a typed error, never a panic, and
    /// recovery is layered: a salvage open
    /// ([`snapshot::open_salvage`](crate::snapshot::open_salvage))
    /// quarantines the damaged segments and keeps serving the healthy
    /// shards, a targeted [`snapshot::sync`](crate::snapshot::sync)
    /// re-encodes only the quarantined shards from source, and a full
    /// re-ingest into the same directory is the last resort.
    SnapshotCorrupt {
        /// The offending file.
        path: String,
        /// What failed to decode or verify.
        message: String,
    },
    /// The append journal cannot be enabled for a directory: journal
    /// frames record positions relative to that directory's manifest, so
    /// the served log must have checkpoint lineage there (it was opened
    /// from, persisted to, or checkpointed into the directory, and only
    /// appends happened since).  Recovery: checkpoint first, then enable.
    JournalNotAnchored {
        /// The snapshot directory journaling was requested for.
        path: String,
    },
    /// The snapshot was written by an incompatible version of the store
    /// format.  Recovery: re-ingest from the original source.
    SnapshotVersionSkew {
        /// The version recorded in the snapshot.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The request's [`CancelToken`](crate::cancel::CancelToken) was
    /// cancelled before the pipeline finished; partial work was discarded.
    Cancelled,
    /// The request's deadline passed before the pipeline finished.  Distinct
    /// from [`CoreError::Cancelled`] so network callers can map it to a
    /// timeout status rather than a client-abort status.
    DeadlineExceeded,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownExecution(id) => {
                write!(f, "execution '{id}' is not in the log")
            }
            CoreError::KindMismatch { expected, found } => {
                write!(f, "expected a {expected} identifier but found a {found}")
            }
            CoreError::QueryPreconditionViolated(msg) => {
                write!(f, "query precondition violated: {msg}")
            }
            CoreError::NotEnoughTrainingPairs { observed, expected } => write!(
                f,
                "not enough related pairs to learn from ({observed} observed, {expected} expected)"
            ),
            CoreError::Pxql(msg) => write!(f, "PXQL error: {msg}"),
            CoreError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            CoreError::SnapshotIo { path, message } => {
                write!(f, "snapshot I/O error on {path}: {message}")
            }
            CoreError::SnapshotCorrupt { path, message } => {
                write!(f, "snapshot file {path} is corrupt: {message}")
            }
            CoreError::JournalNotAnchored { path } => write!(
                f,
                "cannot enable the append journal on {path}: the served log has no \
                 checkpoint lineage there; persist or checkpoint into the directory first"
            ),
            CoreError::SnapshotVersionSkew { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported \
                 (this build reads version {supported}); re-ingest from the source"
            ),
            CoreError::Cancelled => write!(f, "query cancelled before completion"),
            CoreError::DeadlineExceeded => {
                write!(f, "query deadline passed before completion")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<pxql::PxqlError> for CoreError {
    fn from(e: pxql::PxqlError) -> Self {
        CoreError::Pxql(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = CoreError::UnknownExecution("job_7".to_string());
        assert!(err.to_string().contains("job_7"));
        let err = CoreError::NotEnoughTrainingPairs {
            observed: 1,
            expected: 0,
        };
        assert!(err.to_string().contains("1 observed"));
        let err: CoreError = pxql::PxqlError::Invalid("nope".to_string()).into();
        assert!(matches!(err, CoreError::Pxql(_)));
        let err = CoreError::SnapshotCorrupt {
            path: "snap/segment-0001.bin".to_string(),
            message: "fingerprint mismatch".to_string(),
        };
        assert!(err.to_string().contains("segment-0001.bin"));
        assert!(err.to_string().contains("fingerprint mismatch"));
        let err = CoreError::SnapshotVersionSkew {
            found: 9,
            supported: 1,
        };
        assert!(err.to_string().contains("version 9"));
        let err = CoreError::SnapshotIo {
            path: "snap".to_string(),
            message: "permission denied".to_string(),
        };
        assert!(err.to_string().contains("permission denied"));
        let err = CoreError::JournalNotAnchored {
            path: "snap".to_string(),
        };
        assert!(err.to_string().contains("checkpoint lineage"));
        assert!(CoreError::Cancelled.to_string().contains("cancelled"));
        assert!(CoreError::DeadlineExceeded.to_string().contains("deadline"));
    }
}
