//! Persistent segmented snapshot store for execution logs.
//!
//! A PerfXplain deployment ingests logs rarely and queries them constantly,
//! but until this module existed every cold start re-parsed the full JSON
//! log and re-encoded every columnar segment from scratch.  The snapshot
//! store turns that around: the *encoded* form — per-shard binary column
//! segments plus the records that produced them — is what lives on disk,
//! and a cold start reads it straight back into the sharded pipeline:
//!
//! * [`persist`] / [`persist_shards`] write one **segment file** per shard
//!   (length-prefixed binary, format v2: the shard's records slimmed down
//!   to id/kind/parent plus *exception* features, and its compressed job
//!   and task column segments with local dictionaries, via
//!   [`mlcore::ColumnStore::encode_binary`]) and a JSON **manifest** tying
//!   the shards together: per-shard content fingerprints (FxHash, reusing
//!   [`mlcore::hash`]), per-shard feature catalogs, per-shard byte
//!   accounting ([`SnapshotManifest::usage`]), the merged global catalogs
//!   and the source log's generation.  Feature values are **not** written
//!   twice: a record's feature map is rebuilt on open from the column
//!   segments, and only the cells the columns cannot reproduce bit-exactly
//!   (a `Null` value, a canonical-text collision) ride along as explicit
//!   exceptions.
//! * [`open`] loads the segment files across `std::thread::scope` threads
//!   ([`crate::shard::map_chunks`]), verifies every fingerprint and every
//!   schema against the manifest, and hands back a [`Snapshot`].
//!   [`Snapshot::into_views`] consumes it into a [`SnapshotViews`] — the
//!   reassembled [`ExecutionLog`] plus both [`ColumnarLog`] views — with
//!   the decoded `Arc`-backed column buffers **moved, not copied**, into
//!   the views (single-segment snapshots adopt them outright); the views
//!   are **bit-identical** to [`ColumnarLog::build_sharded`] over the
//!   original log, and the log equals [`ExecutionLog::from_shards`] over
//!   the stored shard catalogs, **in manifest order** regardless of how
//!   the files are laid out on disk.
//! * [`sync`] is the incremental re-ingest primitive: the caller fingerprints
//!   each shard's *source* (e.g. the raw bundle bytes), and shards whose
//!   source fingerprint still matches the manifest are reused verbatim —
//!   content-fingerprint-verified but never decoded, re-parsed or
//!   re-encoded — while only the dirty shards are re-encoded.  When the merged feature catalog changes (a new shard
//!   introduced a new feature, or a feature's kind flipped), every segment's
//!   schema is stale and the store transparently re-encodes all shards from
//!   their on-disk records — still without touching the original source.
//!
//! Corruption — truncated files, flipped bytes, edited manifests, version
//! skew — surfaces as typed [`CoreError`]s ([`CoreError::SnapshotCorrupt`],
//! [`CoreError::SnapshotVersionSkew`], [`CoreError::SnapshotIo`]), never a
//! panic.  Recovery is **layered, cheapest first**:
//!
//! 1. **Transient-IO retry.** Every file operation of the store classifies
//!    its `io::ErrorKind`: `Interrupted` / `WouldBlock` / `TimedOut` retry
//!    in place with bounded exponential backoff and deterministic jitter
//!    (`NotFound`, `InvalidData` and every other deterministic outcome
//!    never retry), and the retry count surfaces in
//!    [`SyncReport::io_retries`] so operators can see a flaky disk.
//! 2. **Salvage, then targeted re-encode.** [`open_salvage`] is the
//!    lenient [`open`]: it fingerprint-verifies every shard
//!    *independently*, renames damaged segment files aside
//!    (`quarantine-…`, never deleted — forensics survive), and returns a
//!    [`PartialSnapshot`] of the healthy shards plus a [`ShardDamage`]
//!    report.  [`sync`] with the damaged shards as [`ShardInput::Fresh`]
//!    and the rest [`ShardInput::Unchanged`] then re-encodes *only* what
//!    was damaged — one flipped byte costs one shard re-encode, not a
//!    full re-ingest.  [`verify`] is the read-only health check behind
//!    `perfxplain snapshot verify`.
//! 3. **Full re-ingest** ([`persist_shards`] overwrites whatever was
//!    there) remains the last resort, needed only when the manifest
//!    itself is unreadable or version-skewed, or the source no longer
//!    matches the stored shard layout.
//!
//! Every IO site of the store is additionally a named
//! [`mlcore::failpoints`] site (`snapshot.manifest.read`,
//! `snapshot.segment.write`, `snapshot.segment.decode`, …), so the chaos
//! suite (`tests/chaos.rs`, `--features failpoints`) can inject faults at
//! any of them and prove the layering above actually holds.

use crate::columnar::{encode_segment, ColumnarLog, EncodedSegment};
use crate::error::{CoreError, Result};
use crate::features::{FeatureCatalog, FeatureKind};
use crate::record::{ExecutionKind, ExecutionLog, ExecutionRecord};
use mlcore::{AttrValue, ByteReader, ByteWriter, CodecError, ColumnStore, FxHashMap, FxHasher};
use pxql::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hasher;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Version of the snapshot format this build reads and writes.
///
/// Version 2 compresses column segments (bit-packed dictionary ids,
/// frame-of-reference/delta numerics, presence bitmaps) and slims the
/// records block down to exceptions.  Opening a v1 store reports
/// [`CoreError::SnapshotVersionSkew`] naming a full re-ingest as the
/// recovery path — v1 is not read.
pub const SNAPSHOT_VERSION: u32 = 2;

/// File name of the manifest inside a snapshot directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Magic prefix of every segment file.
const SEGMENT_MAGIC: &[u8; 8] = b"PXSNPSG\0";

/// Nesting bound for decoded [`Value::Pair`]s: real pair features nest one
/// level; a corrupt file must not recurse the decoder off the stack.
const MAX_VALUE_DEPTH: u32 = 32;

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// Content fingerprint of a byte slice (deterministic FxHash-64).
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write(bytes);
    hasher.finish()
}

/// Fingerprint of a sequence of text parts (e.g. the files of a job log
/// bundle).  Each part's length is mixed in before its bytes, so part
/// boundaries matter: `["ab", "c"]` and `["a", "bc"]` differ.
pub fn fingerprint_texts<'a>(parts: impl IntoIterator<Item = &'a str>) -> u64 {
    let mut hasher = FxHasher::default();
    for part in parts {
        hasher.write_u64(part.len() as u64);
        hasher.write(part.as_bytes());
    }
    hasher.finish()
}

/// Combines per-item fingerprints (e.g. one per bundle) into one shard
/// fingerprint, order-sensitively.
pub fn combine_fingerprints(parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut hasher = FxHasher::default();
    for part in parts {
        hasher.write_u64(part);
    }
    hasher.finish()
}

// ---------------------------------------------------------------------------
// Transient-IO retry
// ---------------------------------------------------------------------------

/// Attempts per file operation (the first try included).
const IO_RETRY_ATTEMPTS: u32 = 4;

/// Backoff before retry `k` is `IO_RETRY_BASE_DELAY_US << k` microseconds
/// plus deterministic jitter of at most half that — worst case well under a
/// millisecond across all attempts, so a genuinely stuck disk still fails
/// fast with its typed error.
const IO_RETRY_BASE_DELAY_US: u64 = 50;

/// IO error kinds worth retrying: OS-level hiccups that routinely succeed
/// on the next attempt.  `NotFound`, `InvalidData`, permission errors and
/// every other deterministic outcome must surface immediately.
fn transient_io(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// Runs `op`, retrying transient IO errors with bounded exponential backoff
/// and deterministic jitter (derived from the running retry count — no
/// clock, no RNG, so chaos runs replay exactly).  Each retry increments the
/// shared counter that [`SyncReport::io_retries`] reports.
fn with_io_retry<T>(
    retries: &AtomicU64,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> std::io::Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(err) if transient_io(err.kind()) && attempt + 1 < IO_RETRY_ATTEMPTS => {
                let total = retries.fetch_add(1, Ordering::Relaxed);
                let backoff = IO_RETRY_BASE_DELAY_US << attempt;
                let jitter = total
                    .wrapping_add(u64::from(attempt) + 1)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    >> 32;
                let jitter = jitter % (backoff / 2 + 1);
                std::thread::sleep(std::time::Duration::from_micros(backoff + jitter));
                attempt += 1;
            }
            Err(err) => return Err(err),
        }
    }
}

fn io_error(path: &Path, err: std::io::Error) -> CoreError {
    CoreError::SnapshotIo {
        path: path.display().to_string(),
        message: err.to_string(),
    }
}

/// `std::fs::read` with the failpoint for `site` and transient retry.
fn read_file(path: &Path, site: &str, retries: &AtomicU64) -> Result<Vec<u8>> {
    with_io_retry(retries, || {
        if let Some(failure) = mlcore::failpoints::trigger(site) {
            return Err(failure.into_io_error(site));
        }
        std::fs::read(path)
    })
    .map_err(|e| io_error(path, e))
}

/// `std::fs::read_to_string` with the failpoint for `site` and retry.
fn read_file_to_string(path: &Path, site: &str, retries: &AtomicU64) -> Result<String> {
    with_io_retry(retries, || {
        if let Some(failure) = mlcore::failpoints::trigger(site) {
            return Err(failure.into_io_error(site));
        }
        std::fs::read_to_string(path)
    })
    .map_err(|e| io_error(path, e))
}

/// `std::fs::write` with the failpoint for `site` and retry.
fn write_file(path: &Path, site: &str, retries: &AtomicU64, bytes: &[u8]) -> Result<()> {
    with_io_retry(retries, || {
        if let Some(failure) = mlcore::failpoints::trigger(site) {
            return Err(failure.into_io_error(site));
        }
        std::fs::write(path, bytes)
    })
    .map_err(|e| io_error(path, e))
}

/// `std::fs::rename` with the failpoint for `site` and retry.
fn rename_file(from: &Path, to: &Path, site: &str, retries: &AtomicU64) -> Result<()> {
    with_io_retry(retries, || {
        if let Some(failure) = mlcore::failpoints::trigger(site) {
            return Err(failure.into_io_error(site));
        }
        std::fs::rename(from, to)
    })
    .map_err(|e| io_error(to, e))
}

/// `std::fs::create_dir_all` with its failpoint and retry.
fn create_dir(dir: &Path, retries: &AtomicU64) -> Result<()> {
    with_io_retry(retries, || {
        if let Some(failure) = mlcore::failpoints::trigger("snapshot.dir.create") {
            return Err(failure.into_io_error("snapshot.dir.create"));
        }
        std::fs::create_dir_all(dir)
    })
    .map_err(|e| io_error(dir, e))
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One shard of the snapshot, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardEntry {
    /// Segment file name, relative to the snapshot directory.
    pub file: String,
    /// Records stored in the shard (jobs + tasks).
    pub rows: u64,
    /// FxHash-64 over the segment file's bytes; verified on every open.
    pub fingerprint: u64,
    /// Fingerprint of the shard's *source* (e.g. raw bundle bytes), set by
    /// ingest so a later incremental [`sync`] can skip unchanged shards
    /// without reading anything.  `None` when the snapshot was persisted
    /// from an in-memory log.
    pub source_fingerprint: Option<u64>,
    /// Total bytes of the segment file on disk.
    pub bytes: u64,
    /// Bytes of the compressed job columns block (length prefix included).
    pub job_bytes: u64,
    /// Bytes of the compressed task columns block (length prefix included).
    pub task_bytes: u64,
    /// Bytes an equivalent v1 segment file (uncompressed fixed-width cells,
    /// full per-record feature maps) would occupy — the denominator of
    /// [`SnapshotUsage::compression_ratio`], computed arithmetically at
    /// encode time, never written.
    pub raw_bytes: u64,
    /// The shard's own job-feature catalog (what
    /// [`FeatureCatalog::infer`] saw in this shard alone); merged in
    /// manifest order to rebuild the global catalog.
    pub job_catalog: FeatureCatalog,
    /// The shard's own task-feature catalog.
    pub task_catalog: FeatureCatalog,
}

/// The manifest tying a snapshot directory together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotManifest {
    /// Snapshot format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Generation of the source log at persist time (provenance only; a
    /// reopened log starts counting anew, like the JSON path).
    pub generation: u64,
    /// The merged global job catalog every job segment is encoded against.
    pub job_catalog: FeatureCatalog,
    /// The merged global task catalog every task segment is encoded against.
    pub task_catalog: FeatureCatalog,
    /// The shards, in ingest order.  **This order is authoritative**: open
    /// assembles records, catalogs and column segments in manifest order,
    /// whatever order the files come off the directory in.
    pub shards: Vec<ShardEntry>,
}

/// On-disk byte accounting of a snapshot, summed over its shards
/// ([`SnapshotManifest::usage`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotUsage {
    /// Total segment-file bytes (manifest excluded).
    pub total_bytes: u64,
    /// Bytes of the records blocks (ids, parents, exception features) plus
    /// the fixed per-file header.
    pub records_bytes: u64,
    /// Bytes of the compressed job columns blocks.
    pub job_bytes: u64,
    /// Bytes of the compressed task columns blocks.
    pub task_bytes: u64,
    /// Bytes the same data would occupy in the v1 raw fixed-width format.
    pub raw_bytes: u64,
}

impl SnapshotUsage {
    /// How many raw fixed-width bytes each stored byte stands for
    /// (`raw_bytes / total_bytes`; 1.0 for an empty store).
    pub fn compression_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Probe used to read the version field before the full manifest parse, so
/// a future-format manifest reports version skew instead of a parse error.
#[derive(Debug, Serialize, Deserialize)]
struct ManifestVersionProbe {
    version: u64,
}

impl SnapshotManifest {
    /// The global catalog for one execution kind.
    pub fn catalog(&self, kind: ExecutionKind) -> &FeatureCatalog {
        match kind {
            ExecutionKind::Job => &self.job_catalog,
            ExecutionKind::Task => &self.task_catalog,
        }
    }

    /// Total records across all shards.
    pub fn rows(&self) -> usize {
        self.shards.iter().map(|s| s.rows as usize).sum()
    }

    /// On-disk byte accounting summed across all shards.
    pub fn usage(&self) -> SnapshotUsage {
        let mut usage = SnapshotUsage::default();
        for shard in &self.shards {
            usage.total_bytes += shard.bytes;
            usage.job_bytes += shard.job_bytes;
            usage.task_bytes += shard.task_bytes;
            usage.raw_bytes += shard.raw_bytes;
        }
        usage.records_bytes = usage
            .total_bytes
            .saturating_sub(usage.job_bytes + usage.task_bytes);
        usage
    }

    /// Loads and validates the manifest of a snapshot directory.
    pub fn load(dir: &Path) -> Result<SnapshotManifest> {
        Self::load_with_retries(dir, &AtomicU64::new(0))
    }

    /// [`SnapshotManifest::load`] with the caller's retry counter threaded
    /// through the transient-IO retry wrapper.
    fn load_with_retries(dir: &Path, retries: &AtomicU64) -> Result<SnapshotManifest> {
        let path = dir.join(MANIFEST_FILE);
        let text = read_file_to_string(&path, "snapshot.manifest.read", retries)?;
        let corrupt = |message: String| CoreError::SnapshotCorrupt {
            path: path.display().to_string(),
            message,
        };
        let probe: ManifestVersionProbe = serde_json::from_str(&text)
            .map_err(|e| corrupt(format!("manifest is not valid JSON: {e}")))?;
        if probe.version != u64::from(SNAPSHOT_VERSION) {
            return Err(CoreError::SnapshotVersionSkew {
                found: probe.version.min(u64::from(u32::MAX)) as u32,
                supported: SNAPSHOT_VERSION,
            });
        }
        let manifest: SnapshotManifest = serde_json::from_str(&text)
            .map_err(|e| corrupt(format!("manifest does not parse: {e}")))?;
        if manifest.shards.is_empty() {
            return Err(corrupt("manifest lists no shards".to_string()));
        }
        for entry in &manifest.shards {
            // Segment files live flat inside the snapshot directory; a
            // manifest must not be able to point reads elsewhere.
            if entry.file.contains('/') || entry.file.contains('\\') || entry.file.contains("..") {
                return Err(corrupt(format!(
                    "segment file name '{}' escapes the snapshot directory",
                    entry.file
                )));
            }
        }
        Ok(manifest)
    }

    /// Writes the manifest into `dir` (write-then-rename, so a crash never
    /// leaves a half-written manifest behind).
    fn save(&self, dir: &Path, retries: &AtomicU64) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| CoreError::Serialization(e.to_string()))?;
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        let path = dir.join(MANIFEST_FILE);
        write_file(&tmp, "snapshot.manifest.write", retries, json.as_bytes())?;
        rename_file(&tmp, &path, "snapshot.manifest.rename", retries)?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Value / record / catalog codecs
// ---------------------------------------------------------------------------

fn encode_value(writer: &mut ByteWriter, value: &Value) {
    match value {
        Value::Null => writer.put_u8(0),
        Value::Bool(b) => {
            writer.put_u8(1);
            writer.put_u8(u8::from(*b));
        }
        Value::Num(v) => {
            writer.put_u8(2);
            writer.put_f64(*v);
        }
        Value::Str(s) => {
            writer.put_u8(3);
            writer.put_str(s);
        }
        Value::Pair(a, b) => {
            writer.put_u8(4);
            encode_value(writer, a);
            encode_value(writer, b);
        }
    }
}

fn decode_value(reader: &mut ByteReader<'_>, depth: u32) -> std::result::Result<Value, CodecError> {
    if depth > MAX_VALUE_DEPTH {
        return Err(CodecError::Invalid(format!(
            "value nesting exceeds {MAX_VALUE_DEPTH}"
        )));
    }
    Ok(match reader.get_u8()? {
        0 => Value::Null,
        1 => Value::Bool(reader.get_u8()? != 0),
        2 => Value::Num(reader.get_f64()?),
        3 => Value::Str(reader.get_str()?.to_string()),
        4 => {
            let a = decode_value(reader, depth + 1)?;
            let b = decode_value(reader, depth + 1)?;
            Value::pair(a, b)
        }
        tag => return Err(CodecError::Invalid(format!("unknown value tag {tag}"))),
    })
}

/// `true` iff two values are indistinguishable down to the bit level
/// (numbers compare by `to_bits`, so NaN payloads and `-0.0` count).  This
/// is the test for whether a feature can be *omitted* from the records
/// block and rebuilt from the column segments on open.
fn values_identical(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Num(x), Value::Num(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Pair(a1, b1), Value::Pair(a2, b2)) => {
            values_identical(a1, a2) && values_identical(b1, b2)
        }
        _ => false,
    }
}

/// What the column segment at `(row, col)` would rebuild for a feature,
/// compared against the record's actual `value` — without cloning the
/// original.  `None` column (not in the catalog) and `Missing` cells
/// rebuild nothing.
fn column_reconstructs(
    segment: &EncodedSegment,
    row: usize,
    col: Option<usize>,
    value: &Value,
) -> bool {
    let Some(col) = col else { return false };
    match segment.store.value(row, col) {
        AttrValue::Missing => false,
        AttrValue::Num(v) => matches!(value, Value::Num(o) if o.to_bits() == v.to_bits()),
        AttrValue::Nom(id) => values_identical(&segment.originals[col][id as usize], value),
    }
}

/// Writes one record slimmed down to identity plus exceptions: features the
/// column segment reproduces bit-exactly are *not* written — they are
/// rebuilt from the columns on open.  `row` is the record's row within its
/// kind's segment.
fn encode_record_slim(
    writer: &mut ByteWriter,
    record: &ExecutionRecord,
    segment: &EncodedSegment,
    columns_by_name: &FxHashMap<&str, usize>,
    row: usize,
) {
    writer.put_str(&record.id);
    writer.put_u8(match record.kind {
        ExecutionKind::Job => 0,
        ExecutionKind::Task => 1,
    });
    match &record.parent_job {
        None => writer.put_u8(0),
        Some(parent) => {
            writer.put_u8(1);
            writer.put_str(parent);
        }
    }
    let exceptions: Vec<(&String, &Value)> = record
        .features
        .iter()
        .filter(|(name, value)| {
            let col = columns_by_name.get(name.as_str()).copied();
            !column_reconstructs(segment, row, col, value)
        })
        .collect();
    writer.put_u32(exceptions.len() as u32);
    for (name, value) in exceptions {
        writer.put_str(name);
        encode_value(writer, value);
    }
}

/// One record's identity and exception features, before the feature map is
/// rebuilt from the column segments.
struct RecordMeta {
    id: String,
    kind: ExecutionKind,
    parent_job: Option<String>,
    exceptions: Vec<(String, Value)>,
}

fn decode_record_meta(reader: &mut ByteReader<'_>) -> std::result::Result<RecordMeta, CodecError> {
    let id = reader.get_str()?.to_string();
    let kind = match reader.get_u8()? {
        0 => ExecutionKind::Job,
        1 => ExecutionKind::Task,
        tag => {
            return Err(CodecError::Invalid(format!(
                "unknown record kind tag {tag} on '{id}'"
            )))
        }
    };
    let parent_job = match reader.get_u8()? {
        0 => None,
        1 => Some(reader.get_str()?.to_string()),
        tag => {
            return Err(CodecError::Invalid(format!(
                "unknown parent tag {tag} on '{id}'"
            )))
        }
    };
    let count = reader.get_u32()? as usize;
    let mut exceptions = Vec::with_capacity(count.min(reader.remaining()));
    for _ in 0..count {
        let name = reader.get_str()?.to_string();
        let value = decode_value(reader, 0)?;
        exceptions.push((name, value));
    }
    Ok(RecordMeta {
        id,
        kind,
        parent_job,
        exceptions,
    })
}

/// Rebuilds one record's feature map: every present cell of its segment row
/// contributes its feature, then the stored exceptions overwrite or extend.
fn rebuild_record(meta: RecordMeta, segment: &EncodedSegment, row: usize) -> ExecutionRecord {
    let mut features = BTreeMap::new();
    for col in 0..segment.store.num_columns() {
        let value = match segment.store.value(row, col) {
            AttrValue::Missing => continue,
            AttrValue::Num(v) => Value::Num(v),
            AttrValue::Nom(id) => segment.originals[col][id as usize].clone(),
        };
        features.insert(segment.store.attribute(col).name.clone(), value);
    }
    for (name, value) in meta.exceptions {
        features.insert(name, value);
    }
    ExecutionRecord {
        id: meta.id,
        kind: meta.kind,
        parent_job: meta.parent_job,
        features,
    }
}

fn encode_columns(writer: &mut ByteWriter, segment: &EncodedSegment) {
    segment.store.encode_binary(writer);
    for column in &segment.originals {
        writer.put_u32(column.len() as u32);
        for value in column {
            encode_value(writer, value);
        }
    }
}

fn decode_columns(reader: &mut ByteReader<'_>) -> std::result::Result<EncodedSegment, CodecError> {
    let store = ColumnStore::decode_binary(reader)?;
    let mut originals = Vec::with_capacity(store.num_columns());
    for col in 0..store.num_columns() {
        let count = reader.get_u32()? as usize;
        // `cell_eq_const` and `decode` index the originals by dictionary
        // id, so the two must line up exactly or lookups would panic.
        if count != store.attribute(col).dictionary.len() {
            return Err(CodecError::Invalid(format!(
                "column '{}' stores {count} original value(s) for {} dictionary entries",
                store.attribute(col).name,
                store.attribute(col).dictionary.len()
            )));
        }
        let mut column = Vec::with_capacity(count.min(reader.remaining()));
        for _ in 0..count {
            column.push(decode_value(reader, 0)?);
        }
        originals.push(column);
    }
    Ok(EncodedSegment { store, originals })
}

// ---------------------------------------------------------------------------
// Segment files
// ---------------------------------------------------------------------------

/// One fully loaded shard of a snapshot: the records plus the encoded
/// column segments (local dictionaries) of both execution kinds.
#[derive(Debug, Clone)]
pub struct SnapshotShard {
    records: Vec<ExecutionRecord>,
    job: EncodedSegment,
    task: EncodedSegment,
    job_catalog: FeatureCatalog,
    task_catalog: FeatureCatalog,
}

impl SnapshotShard {
    /// The shard's records, in ingest order.
    pub fn records(&self) -> &[ExecutionRecord] {
        &self.records
    }

    /// The shard-local catalog of one kind.
    pub fn catalog(&self, kind: ExecutionKind) -> &FeatureCatalog {
        match kind {
            ExecutionKind::Job => &self.job_catalog,
            ExecutionKind::Task => &self.task_catalog,
        }
    }

    /// The encoded column segment of one kind.
    pub(crate) fn segment(&self, kind: ExecutionKind) -> &EncodedSegment {
        match kind {
            ExecutionKind::Job => &self.job,
            ExecutionKind::Task => &self.task,
        }
    }

    /// Builds the shard's [`ExecutionLog`] (records + stored catalogs, no
    /// re-inference).
    fn to_shard_log(&self) -> ExecutionLog {
        ExecutionLog::from_parts(
            self.records.clone(),
            self.job_catalog.clone(),
            self.task_catalog.clone(),
        )
    }
}

/// Per-block byte accounting of one encoded shard file (block length
/// prefixes included), plus the arithmetic size of its v1 equivalent.
struct ShardSizes {
    total: u64,
    job: u64,
    task: u64,
    raw: u64,
}

/// Byte cost of one value in the v1 encoding ([`encode_value`] is
/// unchanged since v1, so this mirrors it exactly).
fn v1_value_bytes(value: &Value) -> u64 {
    match value {
        Value::Null => 1,
        Value::Bool(_) => 2,
        Value::Num(_) => 9,
        Value::Str(s) => 5 + s.len() as u64,
        Value::Pair(a, b) => 1 + v1_value_bytes(a) + v1_value_bytes(b),
    }
}

/// Exact size of the segment file v1 would have written for the same shard:
/// full per-record feature maps and one tag byte (+ fixed-width payload)
/// per cell.  Computed arithmetically — nothing is encoded.
fn v1_equivalent_bytes(
    records: &[ExecutionRecord],
    job: &EncodedSegment,
    task: &EncodedSegment,
) -> u64 {
    // Magic + version + three block length prefixes + the record count.
    let mut total = (SEGMENT_MAGIC.len() + 4 + 3 * 8 + 8) as u64;
    for record in records {
        total += 4 + record.id.len() as u64 + 1;
        total += match &record.parent_job {
            None => 1,
            Some(parent) => 5 + parent.len() as u64,
        };
        total += 4;
        for (name, value) in &record.features {
            total += 4 + name.len() as u64 + v1_value_bytes(value);
        }
    }
    for segment in [job, task] {
        let store = &segment.store;
        total += 4 + 8;
        for attribute in store.attributes() {
            total += 4 + attribute.name.len() as u64 + 1 + 4;
            for (_, value) in attribute.dictionary.iter() {
                total += 4 + value.len() as u64;
            }
        }
        for col in 0..store.num_columns() {
            for cell in store.column(col) {
                total += match cell {
                    AttrValue::Missing => 1,
                    AttrValue::Num(_) => 9,
                    AttrValue::Nom(_) => 5,
                };
            }
        }
        for column in &segment.originals {
            total += 4;
            for value in column {
                total += v1_value_bytes(value);
            }
        }
    }
    total
}

/// Column index per feature name, in the order [`encode_segment`] lays
/// columns out (catalog order).
fn columns_by_name(catalog: &FeatureCatalog) -> FxHashMap<&str, usize> {
    catalog
        .defs()
        .iter()
        .enumerate()
        .map(|(col, def)| (def.name.as_str(), col))
        .collect()
}

/// Encodes one shard into its segment file bytes, with byte accounting.
fn encode_shard_file(
    records: &[ExecutionRecord],
    job_catalog: &FeatureCatalog,
    task_catalog: &FeatureCatalog,
) -> (Vec<u8>, ShardSizes) {
    let jobs: Vec<&ExecutionRecord> = records
        .iter()
        .filter(|r| r.kind == ExecutionKind::Job)
        .collect();
    let tasks: Vec<&ExecutionRecord> = records
        .iter()
        .filter(|r| r.kind == ExecutionKind::Task)
        .collect();
    let job_segment = encode_segment(job_catalog, &jobs);
    let task_segment = encode_segment(task_catalog, &tasks);
    let job_columns = columns_by_name(job_catalog);
    let task_columns = columns_by_name(task_catalog);

    let mut writer = ByteWriter::with_capacity(records.len() * 16 + 1024);
    writer.put_raw(SEGMENT_MAGIC);
    writer.put_u32(SNAPSHOT_VERSION);
    writer.put_block(|w| {
        w.put_u64(records.len() as u64);
        let mut job_at = 0usize;
        let mut task_at = 0usize;
        for record in records {
            let (segment, columns, at) = match record.kind {
                ExecutionKind::Job => (&job_segment, &job_columns, &mut job_at),
                ExecutionKind::Task => (&task_segment, &task_columns, &mut task_at),
            };
            let row = *at;
            *at += 1;
            encode_record_slim(w, record, segment, columns, row);
        }
    });
    let job_start = writer.len() as u64;
    writer.put_block(|w| encode_columns(w, &job_segment));
    let task_start = writer.len() as u64;
    writer.put_block(|w| encode_columns(w, &task_segment));
    let total = writer.len() as u64;
    let sizes = ShardSizes {
        total,
        job: task_start - job_start,
        task: total - task_start,
        raw: v1_equivalent_bytes(records, &job_segment, &task_segment),
    };
    (writer.into_bytes(), sizes)
}

/// Decodes a segment file (everything after fingerprint verification).
fn decode_shard_file(bytes: &[u8]) -> std::result::Result<ShardPayload, CodecError> {
    let mut reader = ByteReader::new(bytes);
    let magic = reader.take(SEGMENT_MAGIC.len())?;
    if magic != SEGMENT_MAGIC {
        return Err(CodecError::Invalid(
            "not a snapshot segment file (bad magic)".to_string(),
        ));
    }
    let version = reader.get_u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(CodecError::Invalid(format!(
            "segment format version {version} (supported: {SNAPSHOT_VERSION})"
        )));
    }
    let mut records_block = reader.get_block()?;
    let count = records_block.get_count()?;
    let mut metas = Vec::with_capacity(count.min(records_block.remaining()));
    for _ in 0..count {
        metas.push(decode_record_meta(&mut records_block)?);
    }
    let job = decode_columns(&mut reader.get_block()?)?;
    let task = decode_columns(&mut reader.get_block()?)?;

    // The feature maps are rebuilt by walking each record's segment row, so
    // the row counts must line up *before* any cell access (a zero-column
    // store cannot know its row count and contributes nothing — see
    // `load_shard`).
    for (kind, segment) in [(ExecutionKind::Job, &job), (ExecutionKind::Task, &task)] {
        let expected = metas.iter().filter(|m| m.kind == kind).count();
        if segment.store.num_columns() > 0 && segment.store.num_rows() != expected {
            return Err(CodecError::Invalid(format!(
                "{} segment encodes {} row(s) for {expected} {} record(s)",
                kind.as_str(),
                segment.store.num_rows(),
                kind.as_str()
            )));
        }
    }
    let mut job_at = 0usize;
    let mut task_at = 0usize;
    let records = metas
        .into_iter()
        .map(|meta| {
            let (segment, at) = match meta.kind {
                ExecutionKind::Job => (&job, &mut job_at),
                ExecutionKind::Task => (&task, &mut task_at),
            };
            let row = *at;
            *at += 1;
            rebuild_record(meta, segment, row)
        })
        .collect();
    Ok(ShardPayload { records, job, task })
}

/// The decoded body of a segment file (catalogs live in the manifest).
struct ShardPayload {
    records: Vec<ExecutionRecord>,
    job: EncodedSegment,
    task: EncodedSegment,
}

/// Loads and verifies one shard: read, fingerprint-check, decode,
/// consistency-check against its manifest entry and the global catalogs.
fn load_shard(
    dir: &Path,
    entry: &ShardEntry,
    job_catalog: &FeatureCatalog,
    task_catalog: &FeatureCatalog,
    retries: &AtomicU64,
) -> Result<SnapshotShard> {
    let path = dir.join(&entry.file);
    let display = path.display().to_string();
    let bytes = read_file(&path, "snapshot.segment.read", retries)?;
    let corrupt = |message: String| CoreError::SnapshotCorrupt {
        path: display.clone(),
        message,
    };
    let found = fingerprint_bytes(&bytes);
    if found != entry.fingerprint {
        return Err(corrupt(format!(
            "fingerprint mismatch: manifest records {:016x}, file hashes to {found:016x}",
            entry.fingerprint
        )));
    }
    if let Some(failure) = mlcore::failpoints::trigger("snapshot.segment.decode") {
        return Err(corrupt(
            failure.into_io_error("snapshot.segment.decode").to_string(),
        ));
    }
    let payload = decode_shard_file(&bytes).map_err(|e| corrupt(e.to_string()))?;
    if payload.records.len() as u64 != entry.rows {
        return Err(corrupt(format!(
            "manifest records {} row(s), segment holds {}",
            entry.rows,
            payload.records.len()
        )));
    }
    for (kind, segment) in [
        (ExecutionKind::Job, &payload.job),
        (ExecutionKind::Task, &payload.task),
    ] {
        let catalog = match kind {
            ExecutionKind::Job => job_catalog,
            ExecutionKind::Task => task_catalog,
        };
        verify_segment_schema(segment, catalog, kind).map_err(corrupt)?;
        let expected = payload.records.iter().filter(|r| r.kind == kind).count();
        // A zero-column store (empty catalog: the records of this kind
        // carry no features at all) cannot know its row count —
        // `ColumnStore::from_columns` derives rows from the first column —
        // so the cross-check is only meaningful when columns exist.  The
        // in-memory encode produces exactly the same zero-row store for
        // such logs, so views still assemble bit-identically.
        if !catalog.is_empty() && segment.store.num_rows() != expected {
            return Err(CoreError::SnapshotCorrupt {
                path: display.clone(),
                message: format!(
                    "{} segment encodes {} row(s) for {expected} {} record(s)",
                    kind.as_str(),
                    segment.store.num_rows(),
                    kind.as_str()
                ),
            });
        }
    }
    Ok(SnapshotShard {
        records: payload.records,
        job: payload.job,
        task: payload.task,
        job_catalog: entry.job_catalog.clone(),
        task_catalog: entry.task_catalog.clone(),
    })
}

/// A stored segment's schema must match the manifest's global catalog
/// column for column — this is what catches a manifest whose catalogs were
/// edited out from under the segment files.
fn verify_segment_schema(
    segment: &EncodedSegment,
    catalog: &FeatureCatalog,
    kind: ExecutionKind,
) -> std::result::Result<(), String> {
    let attributes = segment.store.attributes();
    if attributes.len() != catalog.len() {
        return Err(format!(
            "{} segment has {} column(s), the manifest catalog {}",
            kind.as_str(),
            attributes.len(),
            catalog.len()
        ));
    }
    for (attribute, def) in attributes.iter().zip(catalog.defs()) {
        let kinds_match = match def.kind {
            FeatureKind::Numeric => attribute.kind == mlcore::AttrKind::Numeric,
            FeatureKind::Nominal => attribute.kind == mlcore::AttrKind::Nominal,
        };
        if attribute.name != def.name || !kinds_match {
            return Err(format!(
                "{} segment column '{}' does not match manifest feature '{}' ({})",
                kind.as_str(),
                attribute.name,
                def.name,
                def.kind
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Snapshot (the loaded store)
// ---------------------------------------------------------------------------

/// A fully loaded, fingerprint-verified snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    manifest: SnapshotManifest,
    shards: Vec<SnapshotShard>,
}

impl Snapshot {
    /// The manifest the snapshot was opened with.
    pub fn manifest(&self) -> &SnapshotManifest {
        &self.manifest
    }

    /// The loaded shards, in manifest order.
    pub fn shards(&self) -> &[SnapshotShard] {
        &self.shards
    }

    /// The merged global catalog of one kind.
    pub fn catalog(&self, kind: ExecutionKind) -> &FeatureCatalog {
        self.manifest.catalog(kind)
    }

    /// Total records across all shards.
    pub fn num_rows(&self) -> usize {
        self.shards.iter().map(|s| s.records.len()).sum()
    }

    /// Reassembles the [`ExecutionLog`]: records concatenated and shard
    /// catalogs merged **in manifest order** ([`ExecutionLog::from_shards`]),
    /// which equals a serial ingest of the same records.
    pub fn to_log(&self) -> ExecutionLog {
        ExecutionLog::from_shards(
            self.shards
                .iter()
                .map(SnapshotShard::to_shard_log)
                .collect(),
        )
    }

    /// Assembles the columnar view of one kind without re-encoding
    /// (see [`ColumnarLog::build_from_snapshot`]).
    pub fn view(&self, kind: ExecutionKind) -> ColumnarLog {
        ColumnarLog::build_from_snapshot(self, kind)
    }

    /// Consumes the snapshot into the reassembled log plus both columnar
    /// views, moving the decoded segments instead of cloning them: the
    /// `Arc`-backed column buffers decoded off disk are the ones the views
    /// end up holding (adopted outright for single-segment snapshots), so
    /// peak memory during a cold open is approximately the final views
    /// plus the log — not 2–3× it, as the clone-per-view path costs.
    ///
    /// The results are bit-identical to [`Snapshot::to_log`] and
    /// [`Snapshot::view`] on the same snapshot.
    pub fn into_views(self) -> SnapshotViews {
        let Snapshot { manifest, shards } = self;
        let mut shard_logs = Vec::with_capacity(shards.len());
        let mut job_segments = Vec::with_capacity(shards.len());
        let mut task_segments = Vec::with_capacity(shards.len());
        let mut job_records = Vec::new();
        let mut task_records = Vec::new();
        for shard in shards {
            // The one unavoidable record clone: both the log and the views
            // own their records.  Segments are moved.
            shard_logs.push(ExecutionLog::from_parts(
                shard.records.clone(),
                shard.job_catalog,
                shard.task_catalog,
            ));
            job_segments.push(shard.job);
            task_segments.push(shard.task);
            for record in shard.records {
                match record.kind {
                    ExecutionKind::Job => job_records.push(record),
                    ExecutionKind::Task => task_records.push(record),
                }
            }
        }
        let log = ExecutionLog::from_shards(shard_logs);
        let job = ColumnarLog::assemble(
            ExecutionKind::Job,
            &manifest.job_catalog,
            job_records,
            job_segments,
        );
        let task = ColumnarLog::assemble(
            ExecutionKind::Task,
            &manifest.task_catalog,
            task_records,
            task_segments,
        );
        SnapshotViews { log, job, task }
    }
}

/// A snapshot consumed into its queryable parts ([`Snapshot::into_views`]):
/// the reassembled log and the two columnar views, sharing no redundant
/// copies of the column data.
#[derive(Debug, Clone)]
pub struct SnapshotViews {
    /// The reassembled execution log (records + merged catalogs).
    pub log: ExecutionLog,
    /// The job view, bit-identical to `ColumnarLog::build` over `log`.
    pub job: ColumnarLog,
    /// The task view, bit-identical to `ColumnarLog::build` over `log`.
    pub task: ColumnarLog,
}

/// Opens a snapshot directory: manifest first, then every segment file
/// loaded and fingerprint-verified across `std::thread::scope` threads
/// ([`crate::shard::map_chunks`]), assembled in manifest order.
pub fn open(dir: &Path) -> Result<Snapshot> {
    let retries = AtomicU64::new(0);
    let manifest = SnapshotManifest::load_with_retries(dir, &retries)?;
    let loaded: Result<Vec<Vec<SnapshotShard>>> = crate::shard::map_chunks(
        &manifest.shards,
        crate::shard::hardware_threads().min(manifest.shards.len()),
        |chunk| {
            chunk
                .iter()
                .map(|entry| {
                    load_shard(
                        dir,
                        entry,
                        &manifest.job_catalog,
                        &manifest.task_catalog,
                        &retries,
                    )
                })
                .collect::<Result<Vec<SnapshotShard>>>()
        },
    )
    .into_iter()
    .collect();
    let shards: Vec<SnapshotShard> = loaded?.into_iter().flatten().collect();

    // The manifest's global catalogs must be exactly the merge of the
    // per-shard catalogs — otherwise `to_log` and the stored segments
    // would disagree about the schema.
    let mut job_catalog = FeatureCatalog::new();
    let mut task_catalog = FeatureCatalog::new();
    for shard in &shards {
        job_catalog.merge(&shard.job_catalog);
        task_catalog.merge(&shard.task_catalog);
    }
    if job_catalog != manifest.job_catalog || task_catalog != manifest.task_catalog {
        return Err(CoreError::SnapshotCorrupt {
            path: dir.join(MANIFEST_FILE).display().to_string(),
            message: "global catalogs are not the merge of the per-shard catalogs".to_string(),
        });
    }
    Ok(Snapshot { manifest, shards })
}

// ---------------------------------------------------------------------------
// Salvage opens and health checks
// ---------------------------------------------------------------------------

/// What happened to one shard that failed verification during
/// [`open_salvage`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardDamage {
    /// The shard's position in the manifest.
    pub index: usize,
    /// The segment file the manifest references.
    pub file: String,
    /// Where the damaged file was renamed to (`quarantine-…`, same
    /// directory), or `None` when the file was missing or the rename
    /// itself failed — it is never deleted either way.
    pub quarantined_as: Option<String>,
    /// Why the shard failed verification.
    pub error: CoreError,
    /// The shard's recorded source fingerprint, so the caller can map the
    /// damage back to the source it must re-parse.
    pub source_fingerprint: Option<u64>,
    /// Rows the manifest records for the shard.
    pub rows: u64,
}

/// The result of a lenient [`open_salvage`]: every shard that verified,
/// plus a damage report for every shard that did not.
///
/// The healthy side behaves like a pruned [`Snapshot`]
/// ([`PartialSnapshot::into_snapshot`]); the damaged side is exactly what a
/// targeted [`sync`] needs to re-encode — each [`ShardDamage`] carries the
/// manifest index and source fingerprint, so the caller re-parses *only*
/// those sources and passes everything else as [`ShardInput::Unchanged`].
#[derive(Debug, Clone)]
pub struct PartialSnapshot {
    manifest: SnapshotManifest,
    healthy: Vec<(usize, SnapshotShard)>,
    quarantined: Vec<ShardDamage>,
    io_retries: u64,
}

impl PartialSnapshot {
    /// The full on-disk manifest, damaged entries included.
    pub fn manifest(&self) -> &SnapshotManifest {
        &self.manifest
    }

    /// Damage reports, in manifest order.
    pub fn quarantined(&self) -> &[ShardDamage] {
        &self.quarantined
    }

    /// Manifest indices of the damaged shards, ascending.
    pub fn damaged_indices(&self) -> Vec<usize> {
        self.quarantined.iter().map(|d| d.index).collect()
    }

    /// How many shards verified clean.
    pub fn healthy_shards(&self) -> usize {
        self.healthy.len()
    }

    /// `true` when every shard verified — the salvage open found nothing
    /// to quarantine and equals a strict [`open`].
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Rows across the healthy shards only.
    pub fn num_rows(&self) -> usize {
        self.healthy
            .iter()
            .map(|(_, shard)| shard.records.len())
            .sum()
    }

    /// Transient-IO retries performed during the salvage open.
    pub fn io_retries(&self) -> u64 {
        self.io_retries
    }

    /// Consumes the partial snapshot into a [`Snapshot`] over the healthy
    /// shards only (manifest pruned to their entries, in manifest order).
    /// The global catalogs are kept as stored — the segments were encoded
    /// and verified against them — so a feature that only ever appeared in
    /// a damaged shard still names a (now empty) column in the views.
    pub fn into_snapshot(self) -> Snapshot {
        let PartialSnapshot {
            mut manifest,
            healthy,
            ..
        } = self;
        let keep: std::collections::BTreeSet<usize> =
            healthy.iter().map(|(index, _)| *index).collect();
        manifest.shards = manifest
            .shards
            .into_iter()
            .enumerate()
            .filter(|(index, _)| keep.contains(index))
            .map(|(_, entry)| entry)
            .collect();
        Snapshot {
            manifest,
            shards: healthy.into_iter().map(|(_, shard)| shard).collect(),
        }
    }
}

/// Lenient [`open`]: verifies every shard independently instead of failing
/// on the first bad one, renames damaged segment files aside
/// (`quarantine-<original name>`, never deleted) and reports them in a
/// [`PartialSnapshot`] next to the healthy shards.
///
/// The manifest itself must still load cleanly — a store whose *manifest*
/// is unreadable, corrupt or version-skewed has nothing to salvage shards
/// against, and the error says so; the recovery path for that case remains
/// a full re-ingest.
pub fn open_salvage(dir: &Path) -> Result<PartialSnapshot> {
    let retries = AtomicU64::new(0);
    let manifest = SnapshotManifest::load_with_retries(dir, &retries)?;
    let indexed: Vec<(usize, &ShardEntry)> = manifest.shards.iter().enumerate().collect();
    let loaded: Vec<(usize, Result<SnapshotShard>)> = crate::shard::map_chunks(
        &indexed,
        crate::shard::hardware_threads().min(indexed.len()),
        |chunk| {
            chunk
                .iter()
                .map(|(index, entry)| {
                    (
                        *index,
                        load_shard(
                            dir,
                            entry,
                            &manifest.job_catalog,
                            &manifest.task_catalog,
                            &retries,
                        ),
                    )
                })
                .collect::<Vec<_>>()
        },
    )
    .into_iter()
    .flatten()
    .collect();

    let mut healthy = Vec::with_capacity(loaded.len());
    let mut quarantined = Vec::new();
    for (index, result) in loaded {
        let entry = &manifest.shards[index];
        match result {
            Ok(shard) => healthy.push((index, shard)),
            Err(error) => {
                let from = dir.join(&entry.file);
                let quarantine_name = format!("quarantine-{}", entry.file);
                let to = dir.join(&quarantine_name);
                // Best-effort: the damage report stands even if the rename
                // fails (e.g. the file is simply missing).
                let quarantined_as = if from.exists() {
                    rename_file(&from, &to, "snapshot.segment.quarantine", &retries)
                        .ok()
                        .map(|()| quarantine_name)
                } else {
                    None
                };
                quarantined.push(ShardDamage {
                    index,
                    file: entry.file.clone(),
                    quarantined_as,
                    error,
                    source_fingerprint: entry.source_fingerprint,
                    rows: entry.rows,
                });
            }
        }
    }
    quarantined.sort_by_key(|damage| damage.index);
    Ok(PartialSnapshot {
        manifest,
        healthy,
        quarantined,
        io_retries: retries.load(Ordering::Relaxed),
    })
}

/// One shard's health as reported by [`verify`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealth {
    /// The shard's position in the manifest.
    pub index: usize,
    /// The segment file the manifest references.
    pub file: String,
    /// Rows the manifest records for the shard.
    pub rows: u64,
    /// `None` when the segment's bytes fingerprint-match the manifest;
    /// otherwise why they do not.
    pub error: Option<CoreError>,
}

impl ShardHealth {
    /// Whether the shard verified clean.
    pub fn is_healthy(&self) -> bool {
        self.error.is_none()
    }
}

/// Read-only health check: fingerprint-verifies every segment file against
/// the manifest without decoding anything or building views, and without
/// touching the store (no quarantine, no rewrite).  Returns one
/// [`ShardHealth`] per shard in manifest order; fails outright only when
/// the manifest itself is unusable.
pub fn verify(dir: &Path) -> Result<Vec<ShardHealth>> {
    let retries = AtomicU64::new(0);
    let manifest = SnapshotManifest::load_with_retries(dir, &retries)?;
    let indexed: Vec<(usize, &ShardEntry)> = manifest.shards.iter().enumerate().collect();
    let mut checked: Vec<ShardHealth> = crate::shard::map_chunks(
        &indexed,
        crate::shard::hardware_threads().min(indexed.len()),
        |chunk| {
            chunk
                .iter()
                .map(|(index, entry)| {
                    let path = dir.join(&entry.file);
                    let error = match read_file(&path, "snapshot.segment.read", &retries) {
                        Err(err) => Some(err),
                        Ok(bytes) => {
                            let found = fingerprint_bytes(&bytes);
                            if found == entry.fingerprint {
                                None
                            } else {
                                Some(CoreError::SnapshotCorrupt {
                                    path: path.display().to_string(),
                                    message: format!(
                                        "fingerprint mismatch: manifest records {:016x}, \
                                         file hashes to {found:016x}",
                                        entry.fingerprint
                                    ),
                                })
                            }
                        }
                    };
                    ShardHealth {
                        index: *index,
                        file: entry.file.clone(),
                        rows: entry.rows,
                        error,
                    }
                })
                .collect::<Vec<_>>()
        },
    )
    .into_iter()
    .flatten()
    .collect();
    checked.sort_by_key(|health| health.index);
    Ok(checked)
}

// ---------------------------------------------------------------------------
// Persist
// ---------------------------------------------------------------------------

/// One shard of records headed for a snapshot, with the fingerprint of the
/// source it was parsed from (when there is one).
#[derive(Debug, Clone)]
pub struct RecordShard {
    /// The shard's records, in ingest order.
    pub records: Vec<ExecutionRecord>,
    /// Fingerprint of the raw source behind these records (e.g. bundle
    /// file bytes), recorded in the manifest so a later [`sync`] can skip
    /// the shard when the source has not changed.
    pub source_fingerprint: Option<u64>,
}

/// What a [`persist`] / [`persist_shards`] / [`sync`] call did.
#[derive(Debug, Clone)]
pub struct SyncReport {
    /// The manifest that now describes the snapshot directory.
    pub manifest: SnapshotManifest,
    /// Total records across all shards.
    pub rows: usize,
    /// Shards whose segments were (re-)encoded and written.
    pub shards_encoded: usize,
    /// Shards served from disk untouched (source fingerprint matched and
    /// the global catalog was stable).
    pub shards_reused: usize,
    /// Whether the merged global catalog changed, forcing every segment to
    /// re-encode from its on-disk records ([`sync`] only).
    pub catalog_changed: bool,
    /// Wall-clock seconds spent encoding segments (CPU).
    pub encode_seconds: f64,
    /// Wall-clock seconds spent writing files and the manifest (I/O).
    pub write_seconds: f64,
    /// Transient IO errors (`Interrupted` / `WouldBlock` / `TimedOut`)
    /// absorbed by in-place retry during this operation.  Persistently
    /// non-zero numbers mean the storage under the snapshot directory is
    /// flaky even though the operation succeeded.
    pub io_retries: u64,
}

/// Persists a log as `num_shards` contiguous segments (at least one, even
/// for an empty log).  Overwrites whatever snapshot was in `dir`.
pub fn persist(log: &ExecutionLog, dir: &Path, num_shards: usize) -> Result<SyncReport> {
    let records = log.records();
    let chunk_size = records.len().div_ceil(num_shards.max(1)).max(1);
    let mut shards: Vec<RecordShard> = records
        .chunks(chunk_size)
        .map(|chunk| RecordShard {
            records: chunk.to_vec(),
            source_fingerprint: None,
        })
        .collect();
    if shards.is_empty() {
        shards.push(RecordShard {
            records: Vec::new(),
            source_fingerprint: None,
        });
    }
    persist_impl(dir, shards, log.generation())
}

/// Persists explicit record shards (e.g. one per bundle batch, so the shard
/// boundaries — and therefore the source fingerprints — are stable across
/// re-ingests).  Overwrites whatever snapshot was in `dir`; this is also
/// the recovery path when [`open`] or [`sync`] report corruption.
pub fn persist_shards(dir: &Path, shards: Vec<RecordShard>) -> Result<SyncReport> {
    persist_impl(dir, shards, 1)
}

fn persist_impl(dir: &Path, mut shards: Vec<RecordShard>, generation: u64) -> Result<SyncReport> {
    if shards.is_empty() {
        shards.push(RecordShard {
            records: Vec::new(),
            source_fingerprint: None,
        });
    }
    // Shard-local catalogs in parallel, then the global merge in order.
    let local_catalogs: Vec<(FeatureCatalog, FeatureCatalog)> = crate::shard::map_chunks(
        &shards,
        crate::shard::hardware_threads().min(shards.len()),
        |chunk| {
            chunk
                .iter()
                .map(|shard| infer_catalogs(&shard.records))
                .collect::<Vec<_>>()
        },
    )
    .into_iter()
    .flatten()
    .collect();
    let mut job_catalog = FeatureCatalog::new();
    let mut task_catalog = FeatureCatalog::new();
    for (job, task) in &local_catalogs {
        job_catalog.merge(job);
        task_catalog.merge(task);
    }

    let encode_started = Instant::now();
    let files: Vec<(Vec<u8>, ShardSizes)> = crate::shard::map_chunks(
        &shards,
        crate::shard::hardware_threads().min(shards.len()),
        |chunk| {
            chunk
                .iter()
                .map(|shard| encode_shard_file(&shard.records, &job_catalog, &task_catalog))
                .collect::<Vec<_>>()
        },
    )
    .into_iter()
    .flatten()
    .collect();
    let encode_seconds = encode_started.elapsed().as_secs_f64();

    let write_started = Instant::now();
    let retries = AtomicU64::new(0);
    create_dir(dir, &retries)?;
    let mut entries = Vec::with_capacity(shards.len());
    for (i, ((shard, (bytes, sizes)), (job_local, task_local))) in
        shards.iter().zip(&files).zip(local_catalogs).enumerate()
    {
        let fingerprint = fingerprint_bytes(bytes);
        let file = segment_file_name(i, fingerprint);
        let path = dir.join(&file);
        write_file(&path, "snapshot.segment.write", &retries, bytes)?;
        entries.push(ShardEntry {
            file,
            rows: shard.records.len() as u64,
            fingerprint,
            source_fingerprint: shard.source_fingerprint,
            bytes: sizes.total,
            job_bytes: sizes.job,
            task_bytes: sizes.task,
            raw_bytes: sizes.raw,
            job_catalog: job_local,
            task_catalog: task_local,
        });
    }
    let manifest = SnapshotManifest {
        version: SNAPSHOT_VERSION,
        generation,
        job_catalog,
        task_catalog,
        shards: entries,
    };
    manifest.save(dir, &retries)?;
    remove_orphan_segments(dir, &manifest);
    remove_stale_journal(dir);
    let write_seconds = write_started.elapsed().as_secs_f64();

    Ok(SyncReport {
        rows: manifest.rows(),
        shards_encoded: shards.len(),
        shards_reused: 0,
        catalog_changed: false,
        encode_seconds,
        write_seconds,
        io_retries: retries.load(Ordering::Relaxed),
        manifest,
    })
}

/// Segment file names embed the content fingerprint, so a re-encoded shard
/// gets a *new* file and the previously committed one is never overwritten
/// in place: a crash between segment writes and the manifest's atomic
/// write-then-rename leaves — at worst — unreferenced new files behind,
/// never a manifest pointing at bytes it does not describe.
fn segment_file_name(index: usize, fingerprint: u64) -> String {
    format!("segment-{index:04}-{fingerprint:016x}.bin")
}

/// Best-effort removal of `segment-*.bin` files the committed manifest no
/// longer references: superseded versions of re-encoded shards, shards
/// dropped by a shrinking re-ingest, and leftovers of crashed writes.
/// Failures are ignored — an orphan costs disk, never correctness.
fn remove_orphan_segments(dir: &Path, manifest: &SnapshotManifest) {
    let referenced: std::collections::BTreeSet<&str> =
        manifest.shards.iter().map(|s| s.file.as_str()).collect();
    let Ok(listing) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in listing.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("segment-") && name.ends_with(".bin") && !referenced.contains(name) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn infer_catalogs(records: &[ExecutionRecord]) -> (FeatureCatalog, FeatureCatalog) {
    (
        FeatureCatalog::infer(
            records
                .iter()
                .filter(|r| r.kind == ExecutionKind::Job)
                .map(|r| &r.features),
        ),
        FeatureCatalog::infer(
            records
                .iter()
                .filter(|r| r.kind == ExecutionKind::Task)
                .map(|r| &r.features),
        ),
    )
}

// ---------------------------------------------------------------------------
// Incremental sync
// ---------------------------------------------------------------------------

/// One shard of input to an incremental [`sync`].
#[derive(Debug, Clone)]
pub enum ShardInput {
    /// The shard's source still fingerprints to this value (matching the
    /// manifest): reuse the stored segment without re-parsing or
    /// re-encoding anything.
    Unchanged {
        /// Fingerprint of the (unchanged) source; must equal the
        /// manifest's recorded `source_fingerprint` for this position.
        source_fingerprint: u64,
    },
    /// The shard's source changed (or is new): these are its freshly
    /// parsed records.
    Fresh(RecordShard),
    /// Keep the shard at this position exactly as the manifest records it,
    /// with no source-fingerprint bookkeeping — unlike
    /// [`ShardInput::Unchanged`], this works for shards persisted without a
    /// source fingerprint (e.g. by [`persist`]).  The segment's *content*
    /// fingerprint is still verified.  This is the checkpoint path: a
    /// serving process appending a tail shard ([`sync_append`]) keeps every
    /// existing shard by position without knowing how it was ingested.
    Keep,
}

/// Incrementally re-ingests into an existing snapshot: shards marked
/// [`ShardInput::Unchanged`] keep their on-disk segments (verified by
/// fingerprint bookkeeping — the reused entries carry their recorded
/// content fingerprints forward, and the files are not rewritten), while
/// fresh shards are encoded and written.  If the merged feature catalog
/// changes, every stored segment's schema is stale and all shards re-encode
/// from their on-disk records — the original source is still not touched.
///
/// Fails with a typed error when `dir` holds no (or a corrupt or
/// version-skewed) snapshot, or when an `Unchanged` shard's fingerprint
/// does not match the manifest; the recovery path is a full
/// [`persist_shards`] with every shard fresh.
pub fn sync(dir: &Path, inputs: Vec<ShardInput>) -> Result<SyncReport> {
    let retries = AtomicU64::new(0);
    let old = SnapshotManifest::load_with_retries(dir, &retries)?;
    let manifest_path = dir.join(MANIFEST_FILE).display().to_string();

    // An emptied source is a full rewrite down to one empty shard — a
    // zero-shard manifest would be unreadable (`load` rejects it).
    if inputs.is_empty() {
        return persist_shards(dir, Vec::new());
    }

    // Validate every reuse claim against the manifest before doing work.
    for (i, input) in inputs.iter().enumerate() {
        match input {
            ShardInput::Unchanged { source_fingerprint } => {
                let recorded = old.shards.get(i).and_then(|e| e.source_fingerprint);
                if recorded != Some(*source_fingerprint) {
                    return Err(CoreError::SnapshotCorrupt {
                        path: manifest_path.clone(),
                        message: format!(
                            "shard {i} cannot be reused: manifest records source fingerprint \
                             {recorded:?}, caller observed {source_fingerprint:016x}"
                        ),
                    });
                }
            }
            ShardInput::Keep if old.shards.get(i).is_none() => {
                return Err(CoreError::SnapshotCorrupt {
                    path: manifest_path.clone(),
                    message: format!(
                        "shard {i} cannot be kept: the manifest records only {} shards",
                        old.shards.len()
                    ),
                });
            }
            _ => {}
        }
    }

    // Per-shard catalogs: stored entries for unchanged shards, inference
    // for fresh ones; then the global merge in input order.
    let local_catalogs: Vec<(FeatureCatalog, FeatureCatalog)> = crate::shard::map_chunks(
        &inputs,
        crate::shard::hardware_threads().min(inputs.len().max(1)),
        |chunk| {
            chunk
                .iter()
                .map(|input| match input {
                    ShardInput::Fresh(shard) => infer_catalogs(&shard.records),
                    ShardInput::Unchanged { .. } | ShardInput::Keep => Default::default(),
                })
                .collect::<Vec<_>>()
        },
    )
    .into_iter()
    .flatten()
    .collect();
    let mut job_catalog = FeatureCatalog::new();
    let mut task_catalog = FeatureCatalog::new();
    let mut entry_catalogs = Vec::with_capacity(inputs.len());
    for (i, input) in inputs.iter().enumerate() {
        let (job, task) = match input {
            ShardInput::Fresh(_) => local_catalogs[i].clone(),
            ShardInput::Unchanged { .. } | ShardInput::Keep => {
                let entry = &old.shards[i];
                (entry.job_catalog.clone(), entry.task_catalog.clone())
            }
        };
        job_catalog.merge(&job);
        task_catalog.merge(&task);
        entry_catalogs.push((job, task));
    }
    let catalog_changed = job_catalog != old.job_catalog || task_catalog != old.task_catalog;

    // When the schema moved, the reused shards' records must come off disk
    // so their segments can re-encode against the new catalog.
    let reloaded: Vec<Option<Vec<ExecutionRecord>>> = if catalog_changed {
        let job_old = &old.job_catalog;
        let task_old = &old.task_catalog;
        crate::shard::map_chunks(
            &inputs.iter().enumerate().collect::<Vec<_>>(),
            crate::shard::hardware_threads().min(inputs.len().max(1)),
            |chunk| {
                chunk
                    .iter()
                    .map(|(i, input)| match input {
                        ShardInput::Unchanged { .. } | ShardInput::Keep => {
                            load_shard(dir, &old.shards[*i], job_old, task_old, &retries)
                                .map(|shard| Some(shard.records))
                        }
                        ShardInput::Fresh(_) => Ok(None),
                    })
                    .collect::<Result<Vec<_>>>()
            },
        )
        .into_iter()
        .collect::<Result<Vec<_>>>()?
        .into_iter()
        .flatten()
        .collect()
    } else {
        // Reused segments are still *served from disk* afterwards, so their
        // content must be good: verify each one's fingerprint (a cheap byte
        // hash — no decode, no re-encode) so a corrupted store fails this
        // sync with a typed error instead of surfacing at the next open.
        let unchanged: Vec<usize> = inputs
            .iter()
            .enumerate()
            .filter(|(_, input)| matches!(input, ShardInput::Unchanged { .. } | ShardInput::Keep))
            .map(|(i, _)| i)
            .collect();
        let verified: Result<Vec<()>> = crate::shard::map_chunks(
            &unchanged,
            crate::shard::hardware_threads().min(unchanged.len().max(1)),
            |chunk| {
                chunk
                    .iter()
                    .map(|&i| {
                        let entry = &old.shards[i];
                        let path = dir.join(&entry.file);
                        let bytes = read_file(&path, "snapshot.segment.read", &retries)?;
                        let found = fingerprint_bytes(&bytes);
                        if found != entry.fingerprint {
                            return Err(CoreError::SnapshotCorrupt {
                                path: path.display().to_string(),
                                message: format!(
                                    "fingerprint mismatch: manifest records {:016x}, \
                                     file hashes to {found:016x}",
                                    entry.fingerprint
                                ),
                            });
                        }
                        Ok(())
                    })
                    .collect::<Result<Vec<()>>>()
            },
        )
        .into_iter()
        .collect::<Result<Vec<_>>>()
        .map(|chunks| chunks.into_iter().flatten().collect());
        verified?;
        vec![None; inputs.len()]
    };

    // Encode what needs encoding.
    let encode_started = Instant::now();
    struct Job<'a> {
        index: usize,
        records: &'a [ExecutionRecord],
    }
    let mut jobs = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        match input {
            ShardInput::Fresh(shard) => jobs.push(Job {
                index: i,
                records: &shard.records,
            }),
            ShardInput::Unchanged { .. } | ShardInput::Keep if catalog_changed => jobs.push(Job {
                index: i,
                records: reloaded[i].as_deref().expect("reloaded above"),
            }),
            ShardInput::Unchanged { .. } | ShardInput::Keep => {}
        }
    }
    let encoded: Vec<(usize, (Vec<u8>, ShardSizes))> = crate::shard::map_chunks(
        &jobs,
        crate::shard::hardware_threads().min(jobs.len().max(1)),
        |chunk| {
            chunk
                .iter()
                .map(|job| {
                    (
                        job.index,
                        encode_shard_file(job.records, &job_catalog, &task_catalog),
                    )
                })
                .collect::<Vec<_>>()
        },
    )
    .into_iter()
    .flatten()
    .collect();
    let encode_seconds = encode_started.elapsed().as_secs_f64();

    // Write the fresh files and assemble the new manifest.
    let write_started = Instant::now();
    let mut fresh_files: BTreeMap<usize, (Vec<u8>, ShardSizes)> = encoded.into_iter().collect();
    let mut entries = Vec::with_capacity(inputs.len());
    let mut shards_encoded = 0usize;
    let mut shards_reused = 0usize;
    for (i, input) in inputs.iter().enumerate() {
        let (job_local, task_local) = entry_catalogs[i].clone();
        let entry = match (input, fresh_files.remove(&i)) {
            (ShardInput::Unchanged { source_fingerprint }, None) => {
                shards_reused += 1;
                let old_entry = &old.shards[i];
                ShardEntry {
                    file: old_entry.file.clone(),
                    rows: old_entry.rows,
                    fingerprint: old_entry.fingerprint,
                    source_fingerprint: Some(*source_fingerprint),
                    bytes: old_entry.bytes,
                    job_bytes: old_entry.job_bytes,
                    task_bytes: old_entry.task_bytes,
                    raw_bytes: old_entry.raw_bytes,
                    job_catalog: job_local,
                    task_catalog: task_local,
                }
            }
            (ShardInput::Keep, None) => {
                shards_reused += 1;
                let old_entry = &old.shards[i];
                let mut entry = old_entry.clone();
                entry.job_catalog = job_local;
                entry.task_catalog = task_local;
                entry
            }
            (input, Some((bytes, sizes))) => {
                shards_encoded += 1;
                let rows = match input {
                    ShardInput::Fresh(shard) => shard.records.len(),
                    ShardInput::Unchanged { .. } | ShardInput::Keep => {
                        reloaded[i].as_ref().expect("reloaded above").len()
                    }
                };
                let source_fingerprint = match input {
                    ShardInput::Fresh(shard) => shard.source_fingerprint,
                    ShardInput::Unchanged { source_fingerprint } => Some(*source_fingerprint),
                    ShardInput::Keep => old.shards[i].source_fingerprint,
                };
                let fingerprint = fingerprint_bytes(&bytes);
                let file = segment_file_name(i, fingerprint);
                let path = dir.join(&file);
                write_file(&path, "snapshot.segment.write", &retries, &bytes)?;
                ShardEntry {
                    file,
                    rows: rows as u64,
                    fingerprint,
                    source_fingerprint,
                    bytes: sizes.total,
                    job_bytes: sizes.job,
                    task_bytes: sizes.task,
                    raw_bytes: sizes.raw,
                    job_catalog: job_local,
                    task_catalog: task_local,
                }
            }
            (ShardInput::Fresh(_), None) => unreachable!("fresh shards are always encoded"),
        };
        entries.push(entry);
    }
    let manifest = SnapshotManifest {
        version: SNAPSHOT_VERSION,
        generation: 1,
        job_catalog,
        task_catalog,
        shards: entries,
    };
    manifest.save(dir, &retries)?;
    remove_orphan_segments(dir, &manifest);
    remove_stale_journal(dir);
    let write_seconds = write_started.elapsed().as_secs_f64();

    Ok(SyncReport {
        rows: manifest.rows(),
        shards_encoded,
        shards_reused,
        catalog_changed,
        encode_seconds,
        write_seconds,
        io_retries: retries.load(Ordering::Relaxed),
        manifest,
    })
}

/// Persists `tail` — the records appended since the snapshot in `dir` was
/// last written — as **one additional incremental shard**, keeping every
/// existing shard verbatim ([`ShardInput::Keep`]).  This is the live-tail
/// checkpoint: a serving process that has only appended since its last
/// [`persist`] encodes O(tail) records instead of re-encoding the world.
/// When the tail introduces features the stored catalog has never seen the
/// schema moved, and [`sync`] transparently re-encodes every segment from
/// its on-disk records — slower, still correct, still no source re-parse.
///
/// An empty tail degenerates to a keep-everything sync: the stored
/// segments are fingerprint-verified and the manifest rewritten, nothing
/// re-encoded.
pub fn sync_append(dir: &Path, tail: Vec<ExecutionRecord>) -> Result<SyncReport> {
    let retries = AtomicU64::new(0);
    let old = SnapshotManifest::load_with_retries(dir, &retries)?;
    let mut inputs: Vec<ShardInput> = (0..old.shards.len()).map(|_| ShardInput::Keep).collect();
    if !tail.is_empty() {
        inputs.push(ShardInput::Fresh(RecordShard {
            records: tail,
            source_fingerprint: None,
        }));
    }
    sync(dir, inputs)
}

// ---------------------------------------------------------------------------
// Append journal (write-ahead durability for the live tail)
// ---------------------------------------------------------------------------

/// File name of the append journal inside a snapshot directory.
pub const JOURNAL_FILE: &str = "journal.bin";

/// Scratch name the next journal generation is staged under during
/// checkpoint rotation ([`Journal::begin_rotation`]).
const JOURNAL_TMP_FILE: &str = "journal.bin.tmp";

/// Magic prefix of the journal file.
const JOURNAL_MAGIC: &[u8; 8] = b"PXSNPJL\0";

/// Bytes of the journal header: magic plus format version.
const JOURNAL_HEADER_BYTES: u64 = (8 + 4) as u64;

/// When journal writes are flushed to stable storage — the knob that trades
/// append latency for the size of the crash window.
///
/// An append is reported **durable** exactly when its frame was fsynced
/// before the acknowledgement: every append under [`FsyncPolicy::Always`],
/// every n-th under [`FsyncPolicy::EveryN`], and none under
/// [`FsyncPolicy::OnCheckpoint`] (those become durable at the next
/// checkpoint or explicit journal sync).  Even non-durable frames are
/// *written*, so only an OS-level crash — not a process crash — can lose
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every appended frame; every acknowledged append is
    /// durable.
    Always,
    /// fsync once per `n` appended frames; at most `n - 1` acknowledged
    /// appends ride in the OS page cache.
    EveryN(u64),
    /// fsync only at checkpoint rotation (and explicit journal syncs); a
    /// process crash loses nothing, an OS crash can lose the un-checkpointed
    /// tail.
    OnCheckpoint,
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every:{n}"),
            FsyncPolicy::OnCheckpoint => write!(f, "oncheckpoint"),
        }
    }
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    /// Parses `always`, `oncheckpoint` (also `checkpoint`), or `every:<n>`
    /// (also `every=<n>` / `every<n>`, n ≥ 1).
    fn from_str(text: &str) -> std::result::Result<FsyncPolicy, String> {
        let lower = text.trim().to_ascii_lowercase();
        match lower.as_str() {
            "always" => return Ok(FsyncPolicy::Always),
            "oncheckpoint" | "on-checkpoint" | "checkpoint" => {
                return Ok(FsyncPolicy::OnCheckpoint)
            }
            _ => {}
        }
        if let Some(rest) = lower.strip_prefix("every") {
            let digits = rest.trim_start_matches([':', '=']);
            if let Ok(n) = digits.parse::<u64>() {
                if n >= 1 {
                    return Ok(FsyncPolicy::EveryN(n));
                }
            }
        }
        Err(format!(
            "unknown fsync policy '{text}' (expected always, every:<n> or oncheckpoint)"
        ))
    }
}

/// Cumulative journal counters, surfaced by the status probe and
/// `snapshot verify`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Bytes of the current journal file (header included).
    pub bytes: u64,
    /// Frames written since the journal was enabled (rotations included).
    pub frames_appended: u64,
    /// Frames replayed into the log when the store was opened.
    pub frames_replayed: u64,
    /// Torn- or corrupt-tail truncations performed on open (0 or 1).
    pub frames_truncated: u64,
    /// fsyncs issued since the journal was enabled.
    pub fsyncs: u64,
    /// Manifest generation of the last checkpoint rotation (0 before the
    /// first).
    pub last_rotation_generation: u64,
}

/// One acknowledged append batch recovered from the journal.
#[derive(Debug, Clone)]
pub struct JournalBatch {
    /// Rows the log held when the batch was acknowledged — the replay
    /// position: a frame applies only when the recovering log has exactly
    /// this many rows, which makes replay idempotent across checkpoint
    /// rotation crash windows.
    pub start_rows: u64,
    /// The acknowledged records, in append order.
    pub records: Vec<ExecutionRecord>,
}

/// What [`read_journal`] recovered from a journal file.
#[derive(Debug, Clone, Default)]
pub struct JournalReplay {
    /// The decoded frames, in journal order.
    pub batches: Vec<JournalBatch>,
    /// Valid journal bytes (header included) after tail truncation.
    pub bytes: u64,
    /// 1 when a torn or corrupt tail was cut off, else 0.
    pub frames_truncated: u64,
    /// Transient-IO retries absorbed while reading.
    pub io_retries: u64,
}

/// Read-only journal health, as audited by [`verify_journal`].
#[derive(Debug, Clone, Default)]
pub struct JournalHealth {
    /// Whether a journal file exists in the directory.
    pub present: bool,
    /// Total bytes of the journal file on disk.
    pub bytes: u64,
    /// Frames whose checksums verified clean.
    pub frames: u64,
    /// Records across the clean frames.
    pub records: u64,
    /// Why the tail (or the whole file) failed verification, when it did.
    pub damage: Option<String>,
}

impl JournalHealth {
    /// `true` when the journal is absent or verified clean end to end.
    pub fn is_healthy(&self) -> bool {
        self.damage.is_none()
    }
}

fn journal_header_bytes() -> Vec<u8> {
    let mut writer = ByteWriter::with_capacity(JOURNAL_HEADER_BYTES as usize);
    writer.put_raw(JOURNAL_MAGIC);
    writer.put_u32(SNAPSHOT_VERSION);
    writer.into_bytes()
}

/// Journal records carry the **full** feature map — unlike
/// [`encode_record_slim`], there are no column segments to rebuild from on
/// replay.
fn encode_journal_record(writer: &mut ByteWriter, record: &ExecutionRecord) {
    writer.put_str(&record.id);
    writer.put_u8(match record.kind {
        ExecutionKind::Job => 0,
        ExecutionKind::Task => 1,
    });
    match &record.parent_job {
        None => writer.put_u8(0),
        Some(parent) => {
            writer.put_u8(1);
            writer.put_str(parent);
        }
    }
    writer.put_u32(record.features.len() as u32);
    for (name, value) in &record.features {
        writer.put_str(name);
        encode_value(writer, value);
    }
}

fn decode_journal_record(
    reader: &mut ByteReader<'_>,
) -> std::result::Result<ExecutionRecord, CodecError> {
    let id = reader.get_str()?.to_string();
    let kind = match reader.get_u8()? {
        0 => ExecutionKind::Job,
        1 => ExecutionKind::Task,
        tag => {
            return Err(CodecError::Invalid(format!(
                "unknown record kind tag {tag} on '{id}'"
            )))
        }
    };
    let parent_job = match reader.get_u8()? {
        0 => None,
        1 => Some(reader.get_str()?.to_string()),
        tag => {
            return Err(CodecError::Invalid(format!(
                "unknown parent tag {tag} on '{id}'"
            )))
        }
    };
    let count = reader.get_u32()? as usize;
    let mut features = BTreeMap::new();
    for _ in 0..count {
        let name = reader.get_str()?.to_string();
        let value = decode_value(reader, 0)?;
        features.insert(name, value);
    }
    Ok(ExecutionRecord {
        id,
        kind,
        parent_job,
        features,
    })
}

/// Encodes one append batch as a self-verifying journal frame.
fn encode_journal_frame(start_rows: u64, records: &[ExecutionRecord]) -> Vec<u8> {
    let mut writer = ByteWriter::with_capacity(records.len() * 96 + 32);
    writer.put_checksummed_block(|w| {
        w.put_u64(start_rows);
        w.put_u64(records.len() as u64);
        for record in records {
            encode_journal_record(w, record);
        }
    });
    writer.into_bytes()
}

fn decode_journal_frame(
    reader: &mut ByteReader<'_>,
) -> std::result::Result<JournalBatch, CodecError> {
    let mut block = reader.get_checksummed_block()?;
    let start_rows = block.get_u64()?;
    let count = block.get_count()?;
    let mut records = Vec::with_capacity(count.min(block.remaining()));
    for _ in 0..count {
        records.push(decode_journal_record(&mut block)?);
    }
    if !block.is_exhausted() {
        return Err(CodecError::Invalid(
            "trailing bytes inside a journal frame".to_string(),
        ));
    }
    Ok(JournalBatch {
        start_rows,
        records,
    })
}

/// One pass over a journal file's bytes: decodes clean frames in order and
/// reports where validity ends.  Never fails — damage is data, not an
/// error.
struct JournalScan {
    batches: Vec<JournalBatch>,
    /// Bytes (from the start of the file) covered by the header plus every
    /// clean frame; anything beyond is torn or corrupt.
    valid_bytes: u64,
    damage: Option<String>,
}

fn scan_journal(bytes: &[u8]) -> JournalScan {
    let mut scan = JournalScan {
        batches: Vec::new(),
        valid_bytes: 0,
        damage: None,
    };
    if bytes.is_empty() {
        // An empty file is a journal that never got its header — nothing
        // was ever acknowledged against it, so it is vacuously clean.
        return scan;
    }
    let mut reader = ByteReader::new(bytes);
    let header_ok = matches!(reader.take(JOURNAL_MAGIC.len()), Ok(magic) if magic == JOURNAL_MAGIC)
        && matches!(reader.get_u32(), Ok(version) if version == SNAPSHOT_VERSION);
    if !header_ok {
        scan.damage = Some("not a journal file (bad magic or version)".to_string());
        return scan;
    }
    scan.valid_bytes = JOURNAL_HEADER_BYTES;
    while !reader.is_exhausted() {
        match decode_journal_frame(&mut reader) {
            Ok(batch) => {
                scan.batches.push(batch);
                scan.valid_bytes = (bytes.len() - reader.remaining()) as u64;
            }
            Err(err) => {
                scan.damage = Some(format!(
                    "frame {} at byte {}: {err}",
                    scan.batches.len(),
                    scan.valid_bytes
                ));
                break;
            }
        }
    }
    scan
}

/// Reads the journal in `dir` for replay: decodes every clean frame and
/// **truncates the file at the last valid frame** when the tail is torn or
/// corrupt (a crash mid-write is the expected way for a journal to end —
/// it is recovery, not an error).  A missing journal replays nothing.
///
/// The caller applies the batches positionally: a batch belongs at
/// [`JournalBatch::start_rows`], so frames already covered by the manifest
/// are skipped and replay stays idempotent.
pub fn read_journal(dir: &Path) -> Result<JournalReplay> {
    let path = dir.join(JOURNAL_FILE);
    if !path.exists() {
        return Ok(JournalReplay::default());
    }
    let retries = AtomicU64::new(0);
    let bytes = read_file(&path, "journal.replay", &retries)?;
    let scan = scan_journal(&bytes);
    let mut frames_truncated = 0;
    if scan.valid_bytes < bytes.len() as u64 {
        frames_truncated = 1;
        let valid = scan.valid_bytes;
        with_io_retry(&retries, || {
            let file = std::fs::OpenOptions::new().write(true).open(&path)?;
            file.set_len(valid)
        })
        .map_err(|e| io_error(&path, e))?;
    }
    Ok(JournalReplay {
        batches: scan.batches,
        bytes: scan.valid_bytes,
        frames_truncated,
        io_retries: retries.load(Ordering::Relaxed),
    })
}

/// Read-only journal audit for `snapshot verify`: decodes every frame
/// checksum without truncating or touching the file.  A missing journal is
/// healthy (the store simply has no live tail).
pub fn verify_journal(dir: &Path) -> Result<JournalHealth> {
    let path = dir.join(JOURNAL_FILE);
    if !path.exists() {
        return Ok(JournalHealth::default());
    }
    let retries = AtomicU64::new(0);
    let bytes = read_file(&path, "journal.replay", &retries)?;
    let scan = scan_journal(&bytes);
    Ok(JournalHealth {
        present: true,
        bytes: bytes.len() as u64,
        frames: scan.batches.len() as u64,
        records: scan.batches.iter().map(|b| b.records.len() as u64).sum(),
        damage: scan.damage,
    })
}

/// The write side of the append journal: an open handle positioned after
/// the last valid frame, the fsync policy, and the cumulative counters.
///
/// Lifecycle: [`Journal::create`] (fresh store or no replay — whatever was
/// in the file is discarded) or [`Journal::resume`] (after
/// [`read_journal`]); [`Journal::append_batch`] per acknowledged append;
/// [`Journal::begin_rotation`] **before** the checkpoint's manifest commit
/// and [`Journal::commit_rotation`] after it — the same crash-ordering
/// discipline as content-addressed segments: at every instant either the
/// old journal covers the un-checkpointed tail or the manifest does.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    path: PathBuf,
    file: std::fs::File,
    policy: FsyncPolicy,
    retries: AtomicU64,
    bytes: u64,
    frames_appended: u64,
    frames_replayed: u64,
    frames_truncated: u64,
    fsyncs: u64,
    unsynced_frames: u64,
    last_rotation_generation: u64,
    /// Set when a failed append could not be scrubbed off the file: an
    /// unacknowledged frame sits at the acked cursor, so any further
    /// frame this journal wrote could be shadowed by it on replay.  The
    /// owner must stop journaling ([`Journal::is_broken`]).
    broken: bool,
}

impl Journal {
    /// Creates (or resets) the journal in `dir` with a fresh header.  Use
    /// this when the in-memory log was *not* recovered from this journal —
    /// stale frames from an unrelated history must never replay.
    pub fn create(dir: &Path, policy: FsyncPolicy) -> Result<Journal> {
        Journal::open_impl(dir, policy, true, 0, 0)
    }

    /// Opens the journal after a [`read_journal`] pass, positioned after
    /// the last valid frame, seeding the replay counters with how many
    /// frames the caller actually applied.
    pub fn resume(
        dir: &Path,
        policy: FsyncPolicy,
        replay: &JournalReplay,
        frames_replayed: u64,
    ) -> Result<Journal> {
        let journal =
            Journal::open_impl(dir, policy, false, frames_replayed, replay.frames_truncated)?;
        journal
            .retries
            .fetch_add(replay.io_retries, Ordering::Relaxed);
        Ok(journal)
    }

    fn open_impl(
        dir: &Path,
        policy: FsyncPolicy,
        reset: bool,
        frames_replayed: u64,
        frames_truncated: u64,
    ) -> Result<Journal> {
        let retries = AtomicU64::new(0);
        create_dir(dir, &retries)?;
        let path = dir.join(JOURNAL_FILE);
        let file = with_io_retry(&retries, || {
            if let Some(failure) = mlcore::failpoints::trigger("journal.write") {
                return Err(failure.into_io_error("journal.write"));
            }
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)
        })
        .map_err(|e| io_error(&path, e))?;
        let len = file.metadata().map_err(|e| io_error(&path, e))?.len();
        let mut journal = Journal {
            dir: dir.to_path_buf(),
            path,
            file,
            policy,
            retries,
            bytes: len,
            frames_appended: 0,
            frames_replayed,
            frames_truncated,
            fsyncs: 0,
            unsynced_frames: 0,
            last_rotation_generation: 0,
            broken: false,
        };
        if reset || len < JOURNAL_HEADER_BYTES {
            journal.write_at(0, &journal_header_bytes())?;
            let header = JOURNAL_HEADER_BYTES;
            let file = &mut journal.file;
            with_io_retry(&journal.retries, || file.set_len(header))
                .map_err(|e| io_error(&journal.path, e))?;
            journal.bytes = header;
        }
        Ok(journal)
    }

    /// The snapshot directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The journal's fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Cumulative counters for the status probe.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            bytes: self.bytes,
            frames_appended: self.frames_appended,
            frames_replayed: self.frames_replayed,
            frames_truncated: self.frames_truncated,
            fsyncs: self.fsyncs,
            last_rotation_generation: self.last_rotation_generation,
        }
    }

    /// Transient-IO retries absorbed by journal operations so far.
    pub fn io_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Writes `bytes` at `offset`, seeking first so a retried attempt
    /// never duplicates a partial write.
    fn write_at(&mut self, offset: u64, bytes: &[u8]) -> Result<()> {
        let file = &mut self.file;
        with_io_retry(&self.retries, || {
            if let Some(failure) = mlcore::failpoints::trigger("journal.write") {
                return Err(failure.into_io_error("journal.write"));
            }
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(bytes)
        })
        .map_err(|e| io_error(&self.path, e))
    }

    fn fsync_now(&mut self) -> Result<()> {
        let file = &mut self.file;
        with_io_retry(&self.retries, || {
            if let Some(failure) = mlcore::failpoints::trigger("journal.fsync") {
                return Err(failure.into_io_error("journal.fsync"));
            }
            file.sync_data()
        })
        .map_err(|e| io_error(&self.path, e))?;
        self.fsyncs += 1;
        self.unsynced_frames = 0;
        Ok(())
    }

    /// Appends one acknowledged batch as a frame and applies the fsync
    /// policy.  Returns whether the batch is **durable** (fsynced before
    /// the acknowledgement).  On error nothing must be acknowledged — the
    /// caller aborts the in-memory append, and the frame is scrubbed back
    /// off the file so it can never replay in place of a *later* acked
    /// frame at the same position (if even the scrub fails the journal
    /// reports [`Journal::is_broken`] and must be deactivated).
    pub fn append_batch(&mut self, start_rows: u64, records: &[ExecutionRecord]) -> Result<bool> {
        if self.broken {
            return Err(io_error(
                &self.path,
                std::io::Error::other(
                    "journal is broken: a failed append left an unacknowledged frame \
                     that could not be scrubbed",
                ),
            ));
        }
        let frame = encode_journal_frame(start_rows, records);
        let pre_bytes = self.bytes;
        let pre_appended = self.frames_appended;
        let pre_unsynced = self.unsynced_frames;
        let result = self.append_frame(&frame);
        if result.is_err() {
            // The frame (whole or torn) may be on disk but was never
            // acknowledged.  Truncate back to the pre-frame offset and
            // restore the counters: the journal stays active and the next
            // acked frame lands at the same position this one vacated.
            // If the truncate itself fails, an unacknowledged frame is
            // stuck at the acked cursor and would shadow whatever acked
            // frame is written there next — mark the journal broken so
            // the owner stops journaling instead of desyncing replay.
            self.bytes = pre_bytes;
            self.frames_appended = pre_appended;
            self.unsynced_frames = pre_unsynced;
            let file = &mut self.file;
            if with_io_retry(&self.retries, || file.set_len(pre_bytes)).is_err() {
                self.broken = true;
            }
        }
        result
    }

    /// Whether a failed append left an unacknowledged frame on disk that
    /// could not be scrubbed — the journal must not be used for further
    /// appends (see [`Journal::append_batch`]).
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    fn append_frame(&mut self, frame: &[u8]) -> Result<bool> {
        self.write_at(self.bytes, frame)?;
        self.bytes += frame.len() as u64;
        self.frames_appended += 1;
        self.unsynced_frames += 1;
        match self.policy {
            FsyncPolicy::Always => {
                self.fsync_now()?;
                Ok(true)
            }
            FsyncPolicy::EveryN(n) => {
                if self.unsynced_frames >= n.max(1) {
                    self.fsync_now()?;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            FsyncPolicy::OnCheckpoint => Ok(false),
        }
    }

    /// Flushes any unsynced frames to stable storage (no-op when none are
    /// pending).
    pub fn sync(&mut self) -> Result<()> {
        if self.unsynced_frames == 0 {
            return Ok(());
        }
        self.fsync_now()
    }

    /// Stage the next journal generation (`journal.bin.tmp`, fresh header)
    /// **before** the checkpoint commits its manifest, so a crash in
    /// between still finds the old journal covering the old manifest's
    /// tail.
    pub fn begin_rotation(&mut self) -> Result<()> {
        let tmp = self.dir.join(JOURNAL_TMP_FILE);
        write_file(
            &tmp,
            "journal.write",
            &self.retries,
            &journal_header_bytes(),
        )
    }

    /// Completes a rotation after the manifest committed: the staged
    /// journal replaces the old one and the handle moves over to it.
    /// `generation` is the manifest generation the checkpoint wrote.
    pub fn commit_rotation(&mut self, generation: u64) -> Result<()> {
        let tmp = self.dir.join(JOURNAL_TMP_FILE);
        rename_file(&tmp, &self.path, "journal.write", &self.retries)?;
        let path = self.path.clone();
        let file = with_io_retry(&self.retries, || {
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
        })
        .map_err(|e| io_error(&path, e))?;
        self.file = file;
        self.bytes = JOURNAL_HEADER_BYTES;
        self.unsynced_frames = 0;
        self.last_rotation_generation = generation;
        // The swap discarded the old file wholesale, and with it any
        // unacknowledged frame a failed scrub left behind.
        self.broken = false;
        Ok(())
    }

    /// Abandons a staged rotation (the checkpoint between
    /// [`Journal::begin_rotation`] and [`Journal::commit_rotation`]
    /// failed): best-effort removal of the scratch file; the old journal
    /// stays authoritative.
    pub fn abort_rotation(&mut self) {
        let _ = std::fs::remove_file(self.dir.join(JOURNAL_TMP_FILE));
    }
}

/// Best-effort removal of the journal once a manifest commit has made its
/// frames redundant: every committed write either re-described the world
/// (full persist — replaying old frames would splice unrelated history) or
/// absorbed the journaled tail into a segment.  A journaling service
/// rotates right after ([`Journal::commit_rotation`] renames the staged
/// `journal.bin.tmp` into place — which is why the scratch file is left
/// alone here).
fn remove_stale_journal(dir: &Path) {
    let _ = std::fs::remove_file(dir.join(JOURNAL_FILE));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ExecutionRecord;

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pxsnap_unit_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_log() -> ExecutionLog {
        let mut log = ExecutionLog::new();
        for i in 0..10 {
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("inputsize", (i as f64) * 1.0e9)
                    .with_feature("pigscript", format!("script_{}.pig", i % 3))
                    .with_feature("duration", 100.0 + i as f64),
            );
            log.push(
                ExecutionRecord::task(format!("task_{i}"), format!("job_{i}"))
                    .with_feature("tasktype", if i % 2 == 0 { "MAP" } else { "REDUCE" })
                    .with_feature("duration", 10.0 + i as f64),
            );
        }
        log.rebuild_catalogs();
        log
    }

    #[test]
    fn fingerprints_are_deterministic_and_part_sensitive() {
        assert_eq!(fingerprint_bytes(b"abc"), fingerprint_bytes(b"abc"));
        assert_ne!(fingerprint_bytes(b"abc"), fingerprint_bytes(b"abd"));
        assert_ne!(
            fingerprint_texts(["ab", "c"]),
            fingerprint_texts(["a", "bc"])
        );
        assert_eq!(
            fingerprint_texts(["history", "conf"]),
            fingerprint_texts(["history", "conf"])
        );
    }

    #[test]
    fn persist_open_round_trips_log_and_views() {
        let log = sample_log();
        let dir = test_dir("roundtrip");
        for shards in [1usize, 3, 7, 64] {
            let report = persist(&log, &dir, shards).unwrap();
            assert_eq!(report.rows, log.len());
            assert_eq!(report.shards_reused, 0);
            assert!(report.manifest.shards.len() <= shards.max(1));

            let snapshot = open(&dir).unwrap();
            assert_eq!(snapshot.num_rows(), log.len());
            assert_eq!(snapshot.to_log(), log);
            for kind in [ExecutionKind::Job, ExecutionKind::Task] {
                assert_eq!(snapshot.view(kind), ColumnarLog::build(&log, kind));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_logs_snapshot_cleanly() {
        let dir = test_dir("empty");
        let log = ExecutionLog::new();
        persist(&log, &dir, 4).unwrap();
        let snapshot = open(&dir).unwrap();
        assert_eq!(snapshot.num_rows(), 0);
        assert_eq!(snapshot.to_log(), log);
        assert_eq!(snapshot.view(ExecutionKind::Job).num_rows(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_reuses_clean_shards_and_reencodes_dirty_ones() {
        let log = sample_log();
        let records = log.records();
        let shards: Vec<RecordShard> = records
            .chunks(4)
            .enumerate()
            .map(|(i, chunk)| RecordShard {
                records: chunk.to_vec(),
                source_fingerprint: Some(1000 + i as u64),
            })
            .collect();
        let count = shards.len();
        let dir = test_dir("sync");
        persist_shards(&dir, shards.clone()).unwrap();
        let before = SnapshotManifest::load(&dir).unwrap();

        // Dirty exactly shard 1: a numeric feature value changes (catalog
        // stays stable).
        let mut dirty = shards[1].clone();
        dirty.records[0].set_feature("duration", 9999.0);
        dirty.source_fingerprint = Some(777);
        let inputs: Vec<ShardInput> = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                if i == 1 {
                    ShardInput::Fresh(dirty.clone())
                } else {
                    ShardInput::Unchanged {
                        source_fingerprint: shard.source_fingerprint.unwrap(),
                    }
                }
            })
            .collect();
        let report = sync(&dir, inputs).unwrap();
        assert_eq!(report.shards_encoded, 1);
        assert_eq!(report.shards_reused, count - 1);
        assert!(!report.catalog_changed);
        // Fingerprint bookkeeping: every clean shard's entry is carried
        // forward bit-for-bit; the dirty shard's fingerprint moved.
        for (i, (old_entry, new_entry)) in before
            .shards
            .iter()
            .zip(&report.manifest.shards)
            .enumerate()
        {
            if i == 1 {
                assert_ne!(old_entry.fingerprint, new_entry.fingerprint);
                assert_eq!(new_entry.source_fingerprint, Some(777));
            } else {
                assert_eq!(old_entry.fingerprint, new_entry.fingerprint);
            }
        }

        // The synced snapshot equals a from-scratch ingest of the same
        // records.
        let mut expected = ExecutionLog::new();
        for (i, shard) in shards.iter().enumerate() {
            let source = if i == 1 { &dirty } else { shard };
            for record in &source.records {
                expected.push(record.clone());
            }
        }
        expected.rebuild_catalogs();
        let snapshot = open(&dir).unwrap();
        assert_eq!(snapshot.to_log(), expected);
        assert_eq!(
            snapshot.view(ExecutionKind::Job),
            ColumnarLog::build(&expected, ExecutionKind::Job)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_append_keeps_base_shards_and_adds_a_tail() {
        let dir = test_dir("sync_append");
        let log = sample_log();
        // `persist` records no source fingerprints — exactly the situation
        // `ShardInput::Keep` exists for.
        persist(&log, &dir, 3).unwrap();
        let base_shards = SnapshotManifest::load(&dir).unwrap().shards.len();

        // A tail whose features the stored catalog already knows: every
        // base shard is kept verbatim, only the tail is encoded.
        let tail = vec![
            ExecutionRecord::job("job_tail")
                .with_feature("inputsize", 5.0e9)
                .with_feature("pigscript", "script_0.pig")
                .with_feature("duration", 111.0),
            ExecutionRecord::task("task_tail", "job_tail")
                .with_feature("tasktype", "MAP")
                .with_feature("duration", 11.0),
        ];
        let before = SnapshotManifest::load(&dir).unwrap();
        let report = sync_append(&dir, tail.clone()).unwrap();
        assert_eq!(report.shards_encoded, 1);
        assert_eq!(report.shards_reused, base_shards);
        assert!(!report.catalog_changed);
        assert_eq!(report.rows, log.len() + tail.len());
        for (old_entry, new_entry) in before.shards.iter().zip(&report.manifest.shards) {
            assert_eq!(old_entry.fingerprint, new_entry.fingerprint);
        }

        // The appended store equals a from-scratch ingest.
        let mut expected = log.clone();
        for record in &tail {
            expected.push(record.clone());
        }
        expected.rebuild_catalogs();
        assert_eq!(open(&dir).unwrap().to_log(), expected);

        // An empty tail is a keep-everything no-op sync.
        let idle = sync_append(&dir, Vec::new()).unwrap();
        assert_eq!(idle.shards_encoded, 0);
        assert_eq!(idle.shards_reused, base_shards + 1);

        // A tail that moves the schema re-encodes every segment from its
        // on-disk records — slower, still correct.
        let oddball = vec![ExecutionRecord::job("job_new_schema")
            .with_feature("inputsize", 1.0e9)
            .with_feature("pigscript", "script_9.pig")
            .with_feature("brand_new_knob", 3.0)
            .with_feature("duration", 5.0)];
        let report = sync_append(&dir, oddball.clone()).unwrap();
        assert!(report.catalog_changed);
        assert_eq!(report.shards_reused, 0);
        assert_eq!(report.shards_encoded, base_shards + 2);
        for record in &oddball {
            expected.push(record.clone());
        }
        expected.rebuild_catalogs();
        assert_eq!(open(&dir).unwrap().to_log(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_reencodes_everything_when_the_catalog_moves() {
        let log = sample_log();
        let shards: Vec<RecordShard> = log
            .records()
            .chunks(5)
            .enumerate()
            .map(|(i, chunk)| RecordShard {
                records: chunk.to_vec(),
                source_fingerprint: Some(i as u64),
            })
            .collect();
        let count = shards.len();
        let dir = test_dir("catalog_move");
        persist_shards(&dir, shards.clone()).unwrap();

        // The dirty shard introduces a brand-new feature: every segment's
        // schema is stale now.
        let mut dirty = shards[0].clone();
        dirty.records[0].set_feature("brand_new_metric", 42.0);
        dirty.source_fingerprint = Some(555);
        let mut inputs: Vec<ShardInput> = vec![ShardInput::Fresh(dirty.clone())];
        for shard in &shards[1..] {
            inputs.push(ShardInput::Unchanged {
                source_fingerprint: shard.source_fingerprint.unwrap(),
            });
        }
        let report = sync(&dir, inputs).unwrap();
        assert!(report.catalog_changed);
        assert_eq!(report.shards_encoded, count);
        assert_eq!(report.shards_reused, 0);

        let mut expected = ExecutionLog::new();
        for record in dirty
            .records
            .iter()
            .chain(shards[1..].iter().flat_map(|s| s.records.iter()))
        {
            expected.push(record.clone());
        }
        expected.rebuild_catalogs();
        let snapshot = open(&dir).unwrap();
        assert_eq!(snapshot.to_log(), expected);
        assert!(snapshot
            .catalog(ExecutionKind::Job)
            .get("brand_new_metric")
            .is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_rejects_stale_reuse_claims() {
        let dir = test_dir("stale_claim");
        persist_shards(
            &dir,
            vec![RecordShard {
                records: sample_log().records().to_vec(),
                source_fingerprint: Some(1),
            }],
        )
        .unwrap();
        let err = sync(
            &dir,
            vec![ShardInput::Unchanged {
                source_fingerprint: 2,
            }],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::SnapshotCorrupt { .. }), "{err}");
        // And a reuse claim past the manifest's shard count.
        let err = sync(
            &dir,
            vec![
                ShardInput::Unchanged {
                    source_fingerprint: 1,
                },
                ShardInput::Unchanged {
                    source_fingerprint: 1,
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::SnapshotCorrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Records of one kind with no features at all yield an empty catalog
    /// and therefore a zero-column (row-count-less) store; a snapshot of
    /// such a log must still round-trip — this was a live bug where the
    /// row-count cross-check misreported healthy files as corrupt.
    #[test]
    fn featureless_records_round_trip() {
        let mut log = ExecutionLog::new();
        log.push(ExecutionRecord::job("job_0").with_feature("duration", 1.0));
        log.push(ExecutionRecord::task("task_0", "job_0"));
        log.push(ExecutionRecord::task("task_1", "job_0"));
        log.rebuild_catalogs();
        let dir = test_dir("featureless");
        persist(&log, &dir, 2).unwrap();
        let snap = open(&dir).unwrap();
        assert_eq!(snap.to_log(), log);
        assert_eq!(snap.view(ExecutionKind::Task).num_rows(), 2);
        assert_eq!(
            snap.view(ExecutionKind::Task),
            ColumnarLog::build(&log, ExecutionKind::Task)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shrinking_reingests_leave_no_orphan_segments() {
        let log = sample_log();
        let dir = test_dir("shrink");
        persist(&log, &dir, 8).unwrap();
        let wide = SnapshotManifest::load(&dir).unwrap().shards.len();
        assert!(wide > 2);
        let report = persist(&log, &dir, 2).unwrap();
        let on_disk: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .filter(|name| name.starts_with("segment-"))
            .collect();
        // Only the committed manifest's segments remain; every wide-layout
        // file was cleaned up after the manifest rename.
        assert_eq!(on_disk.len(), report.manifest.shards.len());
        for entry in &report.manifest.shards {
            assert!(on_disk.contains(&entry.file), "missing {}", entry.file);
        }
        assert_eq!(open(&dir).unwrap().to_log(), log);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn syncing_an_emptied_source_yields_an_openable_empty_snapshot() {
        let dir = test_dir("empty_sync");
        persist(&sample_log(), &dir, 3).unwrap();
        let report = sync(&dir, Vec::new()).unwrap();
        assert_eq!(report.rows, 0);
        // One padded empty shard, never a zero-shard manifest `load`
        // would reject.
        assert_eq!(report.manifest.shards.len(), 1);
        let snap = open(&dir).unwrap();
        assert_eq!(snap.num_rows(), 0);
        assert_eq!(snap.to_log(), ExecutionLog::new());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn opening_nothing_is_an_io_error() {
        let dir = test_dir("missing");
        assert!(matches!(open(&dir), Err(CoreError::SnapshotIo { .. })));
    }

    #[test]
    fn into_views_equals_the_borrowing_paths() {
        let log = sample_log();
        let dir = test_dir("into_views");
        for shards in [1usize, 3] {
            persist(&log, &dir, shards).unwrap();
            let snapshot = open(&dir).unwrap();
            let expected_log = snapshot.to_log();
            let expected_job = snapshot.view(ExecutionKind::Job);
            let expected_task = snapshot.view(ExecutionKind::Task);
            let views = snapshot.into_views();
            assert_eq!(views.log, expected_log);
            assert_eq!(views.job, expected_job);
            assert_eq!(views.task, expected_task);
            assert_eq!(views.job, ColumnarLog::build(&log, ExecutionKind::Job));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn usage_accounts_for_every_on_disk_byte() {
        let log = sample_log();
        let dir = test_dir("usage");
        let report = persist(&log, &dir, 3).unwrap();
        let usage = report.manifest.usage();
        let on_disk: u64 = report
            .manifest
            .shards
            .iter()
            .map(|entry| std::fs::metadata(dir.join(&entry.file)).unwrap().len())
            .sum();
        assert_eq!(usage.total_bytes, on_disk);
        assert_eq!(
            usage.total_bytes,
            usage.records_bytes + usage.job_bytes + usage.task_bytes
        );
        // The v1 equivalent is strictly larger: the whole point of v2.
        assert!(
            usage.raw_bytes > usage.total_bytes,
            "raw {} vs stored {}",
            usage.raw_bytes,
            usage.total_bytes
        );
        assert!(usage.compression_ratio() > 1.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Null features and NaN numerics are exactly what the columns cannot
    /// reproduce — they must ride the exception path and come back
    /// bit-identical.
    #[test]
    fn exceptional_values_round_trip_bit_exactly() {
        let mut log = ExecutionLog::new();
        log.push(
            ExecutionRecord::job("job_0")
                .with_feature("duration", f64::NAN)
                .with_feature("inputsize", -0.0)
                .with_feature("reducers", Value::Null),
        );
        log.push(
            ExecutionRecord::job("job_1")
                .with_feature("duration", 2.0)
                .with_feature("inputsize", f64::NEG_INFINITY),
        );
        log.rebuild_catalogs();
        let dir = test_dir("exceptions");
        persist(&log, &dir, 1).unwrap();
        let reopened = open(&dir).unwrap().to_log();
        for (original, decoded) in log.records().iter().zip(reopened.records()) {
            assert_eq!(original.id, decoded.id);
            assert_eq!(original.features.len(), decoded.features.len());
            for (name, value) in &original.features {
                let got = decoded.features.get(name).unwrap();
                assert!(
                    values_identical(value, got),
                    "feature '{name}': {value:?} vs {got:?}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Shards of `sample_log`, four records each, with stable source
    /// fingerprints — the layout the salvage tests damage and repair.
    fn fingerprinted_shards() -> Vec<RecordShard> {
        sample_log()
            .records()
            .chunks(4)
            .enumerate()
            .map(|(i, chunk)| RecordShard {
                records: chunk.to_vec(),
                source_fingerprint: Some(2000 + i as u64),
            })
            .collect()
    }

    fn flip_byte(path: &std::path::Path, offset: usize) {
        let mut bytes = std::fs::read(path).unwrap();
        bytes[offset] ^= 0xff;
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn salvage_quarantines_damage_and_keeps_healthy_shards() {
        let shards = fingerprinted_shards();
        let dir = test_dir("salvage");
        let report = persist_shards(&dir, shards.clone()).unwrap();
        assert!(report.manifest.shards.len() >= 3);
        let victim = report.manifest.shards[1].file.clone();
        flip_byte(&dir.join(&victim), 12);

        // Strict open refuses; salvage returns everything else.
        assert!(matches!(open(&dir), Err(CoreError::SnapshotCorrupt { .. })));
        let partial = open_salvage(&dir).unwrap();
        assert!(!partial.is_complete());
        assert_eq!(partial.healthy_shards(), report.manifest.shards.len() - 1);
        assert_eq!(partial.damaged_indices(), vec![1]);
        let damage = &partial.quarantined()[0];
        assert_eq!(damage.file, victim);
        assert_eq!(damage.source_fingerprint, Some(2001));
        assert!(matches!(damage.error, CoreError::SnapshotCorrupt { .. }));
        // The damaged file is renamed aside, never deleted.
        let quarantine_name = damage.quarantined_as.clone().unwrap();
        assert_eq!(quarantine_name, format!("quarantine-{victim}"));
        assert!(dir.join(&quarantine_name).exists());
        assert!(!dir.join(&victim).exists());

        // The healthy side carries exactly the undamaged records.
        let healthy_log = partial.into_snapshot().to_log();
        let expected: Vec<&ExecutionRecord> = shards
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .flat_map(|(_, shard)| shard.records.iter())
            .collect();
        assert_eq!(healthy_log.records().len(), expected.len());
        for (got, want) in healthy_log.records().iter().zip(expected) {
            assert_eq!(got.id, want.id);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn salvage_then_targeted_sync_reencodes_only_the_damaged_shard() {
        let shards = fingerprinted_shards();
        let count = shards.len();
        let dir = test_dir("salvage_sync");
        let report = persist_shards(&dir, shards.clone()).unwrap();
        let victim = report.manifest.shards[2].file.clone();
        flip_byte(&dir.join(&victim), 20);

        let partial = open_salvage(&dir).unwrap();
        assert_eq!(partial.damaged_indices(), vec![2]);

        // Re-parse only the damaged shard "from source"; everything else is
        // an unchanged claim.
        let damaged: std::collections::BTreeSet<usize> =
            partial.damaged_indices().into_iter().collect();
        let inputs: Vec<ShardInput> = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                if damaged.contains(&i) {
                    ShardInput::Fresh(shard.clone())
                } else {
                    ShardInput::Unchanged {
                        source_fingerprint: shard.source_fingerprint.unwrap(),
                    }
                }
            })
            .collect();
        let repaired = sync(&dir, inputs).unwrap();
        assert_eq!(repaired.shards_encoded, 1, "only the damaged shard");
        assert_eq!(repaired.shards_reused, count - 1);
        assert!(!repaired.catalog_changed);

        // The repaired store equals a clean full ingest, bit for bit.
        let clean_dir = test_dir("salvage_sync_clean");
        let clean = persist_shards(&clean_dir, shards).unwrap();
        assert_eq!(repaired.manifest, clean.manifest);
        assert_eq!(
            open(&dir).unwrap().view(ExecutionKind::Job),
            open(&clean_dir).unwrap().view(ExecutionKind::Job)
        );
        // The quarantined file survives the repair.
        assert!(dir.join(format!("quarantine-{victim}")).exists());
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&clean_dir).unwrap();
    }

    #[test]
    fn salvage_with_an_unusable_manifest_fails_typed() {
        let dir = test_dir("salvage_manifest");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), r#"{"version": 1}"#).unwrap();
        assert!(matches!(
            open_salvage(&dir),
            Err(CoreError::SnapshotVersionSkew { .. })
        ));
        std::fs::write(dir.join(MANIFEST_FILE), "not json").unwrap();
        assert!(matches!(
            open_salvage(&dir),
            Err(CoreError::SnapshotCorrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_reports_per_shard_health_without_mutating_the_store() {
        let dir = test_dir("verify");
        let report = persist_shards(&dir, fingerprinted_shards()).unwrap();
        let healthy = verify(&dir).unwrap();
        assert_eq!(healthy.len(), report.manifest.shards.len());
        assert!(healthy.iter().all(ShardHealth::is_healthy));

        let victim = report.manifest.shards[0].file.clone();
        flip_byte(&dir.join(&victim), 9);
        let checked = verify(&dir).unwrap();
        assert!(!checked[0].is_healthy());
        assert!(matches!(
            checked[0].error,
            Some(CoreError::SnapshotCorrupt { .. })
        ));
        assert!(checked[1..].iter().all(ShardHealth::is_healthy));
        // Read-only: the damaged file is still in place under its original
        // name (verify never quarantines), and a salvage still finds it.
        assert!(dir.join(&victim).exists());
        assert_eq!(open_salvage(&dir).unwrap().damaged_indices(), vec![0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_operations_report_zero_io_retries() {
        let dir = test_dir("retries");
        let report = persist(&sample_log(), &dir, 2).unwrap();
        assert_eq!(report.io_retries, 0);
        assert_eq!(open_salvage(&dir).unwrap().io_retries(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_kinds_retry_and_hard_kinds_do_not() {
        for kind in [
            std::io::ErrorKind::Interrupted,
            std::io::ErrorKind::WouldBlock,
            std::io::ErrorKind::TimedOut,
        ] {
            assert!(transient_io(kind), "{kind:?} must retry");
            let retries = AtomicU64::new(0);
            let mut failures = 2;
            let result: std::io::Result<u32> = with_io_retry(&retries, || {
                if failures > 0 {
                    failures -= 1;
                    Err(std::io::Error::new(kind, "flaky"))
                } else {
                    Ok(7)
                }
            });
            assert_eq!(result.unwrap(), 7);
            assert_eq!(retries.load(Ordering::Relaxed), 2);
            // A persistent transient error still fails after the bound.
            let retries = AtomicU64::new(0);
            let result: std::io::Result<u32> =
                with_io_retry(&retries, || Err(std::io::Error::new(kind, "stuck")));
            assert_eq!(result.unwrap_err().kind(), kind);
            assert_eq!(
                retries.load(Ordering::Relaxed),
                u64::from(IO_RETRY_ATTEMPTS) - 1
            );
        }
        for kind in [
            std::io::ErrorKind::NotFound,
            std::io::ErrorKind::InvalidData,
            std::io::ErrorKind::PermissionDenied,
        ] {
            assert!(!transient_io(kind), "{kind:?} must not retry");
            let retries = AtomicU64::new(0);
            let result: std::io::Result<u32> =
                with_io_retry(&retries, || Err(std::io::Error::new(kind, "hard")));
            assert_eq!(result.unwrap_err().kind(), kind);
            assert_eq!(retries.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn v1_manifests_report_version_skew_naming_reingest() {
        let dir = test_dir("v1_skew");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), r#"{"version": 1}"#).unwrap();
        let err = open(&dir).unwrap_err();
        match &err {
            CoreError::SnapshotVersionSkew { found, supported } => {
                assert_eq!(*found, 1);
                assert_eq!(*supported, SNAPSHOT_VERSION);
            }
            other => panic!("expected version skew, got {other:?}"),
        }
        assert!(err.to_string().contains("re-ingest"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn journal_batch(tag: u64, count: usize) -> Vec<ExecutionRecord> {
        (0..count)
            .map(|i| {
                ExecutionRecord::job(format!("job_{tag}_{i}"))
                    .with_feature("inputsize", (tag * 100 + i as u64) as f64)
                    .with_feature("pigscript", format!("script_{tag}.pig"))
            })
            .collect()
    }

    #[test]
    fn journal_frames_round_trip_through_create_append_read() {
        let dir = test_dir("journal_roundtrip");
        let mut journal = Journal::create(&dir, FsyncPolicy::Always).unwrap();
        let batches: Vec<Vec<ExecutionRecord>> = (0..4).map(|tag| journal_batch(tag, 3)).collect();
        let mut rows = 10u64; // pretend the manifest already holds 10 rows
        for batch in &batches {
            let durable = journal.append_batch(rows, batch).unwrap();
            assert!(durable, "Always must ack durable");
            rows += batch.len() as u64;
        }
        let stats = journal.stats();
        assert_eq!(stats.frames_appended, 4);
        assert_eq!(stats.fsyncs, 4);
        assert!(stats.bytes > JOURNAL_HEADER_BYTES);
        drop(journal);

        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.frames_truncated, 0);
        assert_eq!(replay.batches.len(), 4);
        let mut expected_rows = 10u64;
        for (batch, expected) in replay.batches.iter().zip(&batches) {
            assert_eq!(batch.start_rows, expected_rows);
            assert_eq!(&batch.records, expected);
            expected_rows += expected.len() as u64;
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_control_the_durable_flag() {
        let dir = test_dir("journal_policies");
        let mut journal = Journal::create(&dir, FsyncPolicy::EveryN(3)).unwrap();
        assert!(!journal.append_batch(0, &journal_batch(0, 1)).unwrap());
        assert!(!journal.append_batch(1, &journal_batch(1, 1)).unwrap());
        assert!(journal.append_batch(2, &journal_batch(2, 1)).unwrap());
        assert_eq!(journal.stats().fsyncs, 1);

        let mut journal = Journal::create(&dir, FsyncPolicy::OnCheckpoint).unwrap();
        assert!(!journal.append_batch(0, &journal_batch(0, 1)).unwrap());
        assert_eq!(journal.stats().fsyncs, 0);
        journal.sync().unwrap();
        assert_eq!(journal.stats().fsyncs, 1);
        journal.sync().unwrap(); // nothing pending: no extra fsync
        assert_eq!(journal.stats().fsyncs, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_and_corrupt_tails_truncate_to_the_last_valid_frame() {
        let dir = test_dir("journal_torn");
        let path = dir.join(JOURNAL_FILE);
        let mut journal = Journal::create(&dir, FsyncPolicy::Always).unwrap();
        journal.append_batch(0, &journal_batch(0, 2)).unwrap();
        let good_bytes = journal.stats().bytes;
        journal.append_batch(2, &journal_batch(1, 2)).unwrap();
        drop(journal);

        // Torn tail: cut the second frame short.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..(good_bytes as usize + 5)]).unwrap();
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.frames_truncated, 1);
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.bytes, good_bytes);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_bytes);

        // Corrupt tail: restore, flip a byte inside the second frame.
        let mut flipped = full.clone();
        let at = good_bytes as usize + 20;
        flipped[at] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.frames_truncated, 1);
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_bytes);

        // A clobbered header is fully damaged: nothing replays.
        std::fs::write(&path, b"garbage").unwrap();
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.frames_truncated, 1);
        assert!(replay.batches.is_empty());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);

        // A missing journal replays nothing and is not damage.
        std::fs::remove_file(&path).unwrap();
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.frames_truncated, 0);
        assert!(replay.batches.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_journal_reports_damage_without_truncating() {
        let dir = test_dir("journal_verify");
        let path = dir.join(JOURNAL_FILE);
        assert!(!verify_journal(&dir).unwrap().present);

        let mut journal = Journal::create(&dir, FsyncPolicy::Always).unwrap();
        journal.append_batch(0, &journal_batch(0, 2)).unwrap();
        journal.append_batch(2, &journal_batch(1, 3)).unwrap();
        drop(journal);
        let health = verify_journal(&dir).unwrap();
        assert!(health.present && health.is_healthy());
        assert_eq!(health.frames, 2);
        assert_eq!(health.records, 5);

        let full = std::fs::read(&path).unwrap();
        let mut flipped = full.clone();
        let last = flipped.len() - 3;
        flipped[last] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        let health = verify_journal(&dir).unwrap();
        assert!(!health.is_healthy());
        assert_eq!(health.frames, 1);
        // Read-only: the file is untouched.
        assert_eq!(std::fs::read(&path).unwrap(), flipped);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_stages_then_swaps_and_resets_bytes() {
        let dir = test_dir("journal_rotation");
        let mut journal = Journal::create(&dir, FsyncPolicy::Always).unwrap();
        journal.append_batch(0, &journal_batch(0, 2)).unwrap();
        journal.begin_rotation().unwrap();
        // Old journal still replayable while the next one is staged.
        assert_eq!(read_journal(&dir).unwrap().batches.len(), 1);
        assert!(dir.join(JOURNAL_TMP_FILE).exists());
        journal.commit_rotation(7).unwrap();
        assert!(!dir.join(JOURNAL_TMP_FILE).exists());
        let stats = journal.stats();
        assert_eq!(stats.bytes, JOURNAL_HEADER_BYTES);
        assert_eq!(stats.last_rotation_generation, 7);
        assert!(read_journal(&dir).unwrap().batches.is_empty());
        // Appends land in the rotated journal.
        journal.append_batch(2, &journal_batch(9, 1)).unwrap();
        drop(journal);
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.batches.len(), 1);
        assert_eq!(replay.batches[0].start_rows, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_resets_and_resume_continues() {
        let dir = test_dir("journal_resume");
        let mut journal = Journal::create(&dir, FsyncPolicy::Always).unwrap();
        journal.append_batch(0, &journal_batch(0, 2)).unwrap();
        drop(journal);

        // Resume picks up after the surviving frames.
        let replay = read_journal(&dir).unwrap();
        let mut journal = Journal::resume(&dir, FsyncPolicy::Always, &replay, 1).unwrap();
        assert_eq!(journal.stats().frames_replayed, 1);
        journal.append_batch(2, &journal_batch(1, 1)).unwrap();
        drop(journal);
        assert_eq!(read_journal(&dir).unwrap().batches.len(), 2);

        // Create discards whatever was there.
        let journal = Journal::create(&dir, FsyncPolicy::Always).unwrap();
        drop(journal);
        assert!(read_journal(&dir).unwrap().batches.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn full_persists_drop_stale_journals() {
        let dir = test_dir("journal_stale");
        let log = sample_log();
        persist(&log, &dir, 2).unwrap();
        let mut journal = Journal::create(&dir, FsyncPolicy::Always).unwrap();
        journal
            .append_batch(log.len() as u64, &journal_batch(0, 2))
            .unwrap();
        drop(journal);
        assert!(dir.join(JOURNAL_FILE).exists());
        // A full rewrite re-describes the world: the journal must not
        // survive to replay unrelated history.
        persist(&log, &dir, 2).unwrap();
        assert!(!dir.join(JOURNAL_FILE).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_parse_and_display() {
        use std::str::FromStr;
        assert_eq!(
            FsyncPolicy::from_str("always").unwrap(),
            FsyncPolicy::Always
        );
        assert_eq!(
            FsyncPolicy::from_str("every:8").unwrap(),
            FsyncPolicy::EveryN(8)
        );
        assert_eq!(
            FsyncPolicy::from_str("every=3").unwrap(),
            FsyncPolicy::EveryN(3)
        );
        assert_eq!(
            FsyncPolicy::from_str("oncheckpoint").unwrap(),
            FsyncPolicy::OnCheckpoint
        );
        assert_eq!(
            FsyncPolicy::from_str("checkpoint").unwrap(),
            FsyncPolicy::OnCheckpoint
        );
        assert!(FsyncPolicy::from_str("every:0").is_err());
        assert!(FsyncPolicy::from_str("sometimes").is_err());
        assert_eq!(FsyncPolicy::EveryN(8).to_string(), "every:8");
        assert_eq!(FsyncPolicy::Always.to_string(), "always");
    }
}
