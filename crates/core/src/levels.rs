//! Feature levels (Section 6.8 of the paper).
//!
//! The paper studies three nested feature sets:
//!
//! 1. **Level 1** — only the `isSame` features;
//! 2. **Level 2** — `isSame`, `compare` and `diff` features (all comparison
//!    features);
//! 3. **Level 3** — everything, including the base features copied from the
//!    executions when they agree.
//!
//! Simpler levels produce more generally-applicable explanations; richer
//! levels allow more precise ones (e.g. `numinstances <= 12`, which needs a
//! base feature).

use crate::pairs::PairFeatureGroup;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The feature set available to the explanation generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureLevel {
    /// Only `isSame` features.
    Level1,
    /// `isSame`, `compare` and `diff` features.
    Level2,
    /// All pair features, including base features.
    Level3,
}

impl FeatureLevel {
    /// The pair-feature groups available at this level.
    pub fn allowed_groups(&self) -> &'static [PairFeatureGroup] {
        match self {
            FeatureLevel::Level1 => &[PairFeatureGroup::IsSame],
            FeatureLevel::Level2 => &[
                PairFeatureGroup::IsSame,
                PairFeatureGroup::Compare,
                PairFeatureGroup::Diff,
            ],
            FeatureLevel::Level3 => &[
                PairFeatureGroup::IsSame,
                PairFeatureGroup::Compare,
                PairFeatureGroup::Diff,
                PairFeatureGroup::Base,
            ],
        }
    }

    /// Whether a feature of the given group may be used at this level.
    pub fn allows(&self, group: PairFeatureGroup) -> bool {
        self.allowed_groups().contains(&group)
    }

    /// All levels, in increasing order of expressiveness.
    pub fn all() -> [FeatureLevel; 3] {
        [
            FeatureLevel::Level1,
            FeatureLevel::Level2,
            FeatureLevel::Level3,
        ]
    }
}

impl fmt::Display for FeatureLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureLevel::Level1 => write!(f, "level-1 (isSame only)"),
            FeatureLevel::Level2 => write!(f, "level-2 (comparison features)"),
            FeatureLevel::Level3 => write!(f, "level-3 (all features)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_nested() {
        let l1 = FeatureLevel::Level1.allowed_groups();
        let l2 = FeatureLevel::Level2.allowed_groups();
        let l3 = FeatureLevel::Level3.allowed_groups();
        assert!(l1.iter().all(|g| l2.contains(g)));
        assert!(l2.iter().all(|g| l3.contains(g)));
        assert_eq!(l1.len(), 1);
        assert_eq!(l2.len(), 3);
        assert_eq!(l3.len(), 4);
    }

    #[test]
    fn allows_matches_groups() {
        assert!(FeatureLevel::Level1.allows(PairFeatureGroup::IsSame));
        assert!(!FeatureLevel::Level1.allows(PairFeatureGroup::Base));
        assert!(!FeatureLevel::Level2.allows(PairFeatureGroup::Base));
        assert!(FeatureLevel::Level3.allows(PairFeatureGroup::Base));
        assert_eq!(FeatureLevel::all().len(), 3);
    }

    #[test]
    fn display_is_informative() {
        assert!(FeatureLevel::Level1.to_string().contains("isSame"));
    }
}
