//! Explanations and their applicability (Definitions 2 and 3 of the paper).

use pxql::{FeatureSource, Predicate, PxqlError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A candidate explanation: a pair of predicates over pair features.
///
/// The `despite` clause extends the user's own despite clause and captures
/// why the pair *should* have performed as expected; the `because` clause
/// captures why, within that context, it performed as observed instead.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Explanation {
    /// The (possibly extended) despite clause, `des'`.
    pub despite: Predicate,
    /// The because clause, `bec`.
    pub because: Predicate,
}

impl Explanation {
    /// Creates an explanation.
    pub fn new(despite: Predicate, because: Predicate) -> Self {
        Explanation { despite, because }
    }

    /// An explanation with only a because clause (the common case when the
    /// user supplied a good despite clause themselves).
    pub fn because_only(because: Predicate) -> Self {
        Explanation {
            despite: Predicate::always_true(),
            because,
        }
    }

    /// Definition 3: an explanation is applicable to a pair when both of its
    /// clauses hold for that pair.
    pub fn is_applicable<S: FeatureSource>(&self, pair: &S) -> bool {
        self.despite.eval(pair) && self.because.eval(pair)
    }

    /// Width of the because clause (number of atomic predicates).
    pub fn width(&self) -> usize {
        self.because.width()
    }

    /// A copy of the explanation with the because clause truncated to
    /// `width` atoms (the atoms are ordered most-important first, so the
    /// truncation keeps the strongest predicates).
    pub fn truncated(&self, width: usize) -> Explanation {
        Explanation {
            despite: self.despite.clone(),
            because: self.because.truncated(width),
        }
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DESPITE {}", self.despite)?;
        write!(f, "BECAUSE {}", self.because)
    }
}

impl FromStr for Explanation {
    type Err = PxqlError;

    /// Parses the textual `DESPITE … BECAUSE …` form, the inverse of
    /// [`Display`](fmt::Display).
    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let (despite, because) = pxql::parse_explanation_str(text)?;
        Ok(Explanation { despite, because })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxql::{Atom, Value};
    use std::collections::BTreeMap;

    fn pair_features() -> BTreeMap<String, Value> {
        BTreeMap::from([
            ("inputsize_compare".to_string(), Value::str("GT")),
            ("blocksize".to_string(), Value::Num(128.0)),
            ("numinstances".to_string(), Value::Num(150.0)),
        ])
    }

    #[test]
    fn applicability_requires_both_clauses() {
        let features = pair_features();
        let expl = Explanation::new(
            Predicate::from_atoms(vec![Atom::eq("inputsize_compare", "GT")]),
            Predicate::from_atoms(vec![
                Atom::new("blocksize", pxql::Op::Ge, 128i64),
                Atom::new("numinstances", pxql::Op::Ge, 100i64),
            ]),
        );
        assert!(expl.is_applicable(&features));

        let not_applicable = Explanation::new(
            Predicate::from_atoms(vec![Atom::eq("inputsize_compare", "LT")]),
            expl.because.clone(),
        );
        assert!(!not_applicable.is_applicable(&features));
        assert_eq!(expl.width(), 2);
    }

    #[test]
    fn truncation_keeps_leading_atoms() {
        let expl = Explanation::because_only(Predicate::from_atoms(vec![
            Atom::eq("a", 1i64),
            Atom::eq("b", 2i64),
            Atom::eq("c", 3i64),
        ]));
        let narrow = expl.truncated(1);
        assert_eq!(narrow.width(), 1);
        assert_eq!(narrow.because.atoms()[0].feature, "a");
        assert!(narrow.despite.is_trivial());
    }

    #[test]
    fn display_uses_despite_because_form() {
        let expl = Explanation::new(
            Predicate::from_atoms(vec![Atom::eq("inputsize_compare", "GT")]),
            Predicate::from_atoms(vec![Atom::new("blocksize", pxql::Op::Ge, 128i64)]),
        );
        let text = expl.to_string();
        assert!(text.starts_with("DESPITE inputsize_compare = GT"));
        assert!(text.contains("BECAUSE blocksize >= 128"));
    }

    #[test]
    fn explanations_round_trip_through_text() {
        let expl = Explanation::new(
            Predicate::from_atoms(vec![Atom::eq("inputsize_compare", "GT")]),
            Predicate::from_atoms(vec![
                Atom::new("blocksize", pxql::Op::Ge, 128i64),
                Atom::eq("avg_cpu_user_isSame", false),
            ]),
        );
        let parsed: Explanation = expl.to_string().parse().unwrap();
        assert_eq!(parsed.despite.width(), 1);
        assert_eq!(parsed.because.width(), 2);
        assert!("not an explanation".parse::<Explanation>().is_err());
    }
}
