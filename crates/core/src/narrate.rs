//! Natural-language narration of explanations.
//!
//! The paper motivates PerfXplain with sentences like *"even though the last
//! task processed the same amount of data as the other tasks, it was faster
//! most likely because the overall memory utilization on the machine was
//! lower"*.  This module renders a structured [`Explanation`] into that kind
//! of sentence so that non-expert users do not have to read predicate
//! syntax.  It is presentation only — nothing downstream depends on it.

use crate::explanation::Explanation;
use crate::pairs::{parse_pair_feature, PairFeatureGroup};
use crate::query::BoundQuery;
use pxql::{Atom, Op, Predicate, Value};

/// Turns a raw feature name into readable words
/// (`avg_load_five` → "average load five", `numinstances` → "number of
/// instances").
fn humanize_feature(raw: &str) -> String {
    match raw {
        "numinstances" => "number of instances".to_string(),
        "inputsize" => "input size".to_string(),
        "blocksize" => "DFS block size".to_string(),
        "iosortfactor" => "io.sort.factor".to_string(),
        "numreducetasks" => "number of reduce tasks".to_string(),
        "nummaptasks" => "number of map tasks".to_string(),
        "pigscript" => "Pig script".to_string(),
        "jobid" => "job".to_string(),
        "tracker_name" => "task tracker".to_string(),
        "hostname" => "host".to_string(),
        "duration" => "duration".to_string(),
        other => {
            let pretty = other.replace('_', " ");
            if let Some(rest) = pretty.strip_prefix("avg ") {
                format!("average {rest}")
            } else {
                pretty
            }
        }
    }
}

/// Renders a numeric constant compactly (bytes become MB/GB when large).
fn humanize_number(value: f64) -> String {
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    if value.abs() >= GB {
        format!("{:.1} GB", value / GB)
    } else if value.abs() >= MB {
        format!("{:.0} MB", value / MB)
    } else if value.fract() == 0.0 {
        format!("{}", value as i64)
    } else {
        format!("{value:.2}")
    }
}

fn humanize_value(value: &Value) -> String {
    match value {
        Value::Num(v) => humanize_number(*v),
        Value::Bool(true) => "the same".to_string(),
        Value::Bool(false) => "different".to_string(),
        Value::Str(s) => s.clone(),
        Value::Pair(a, b) => format!("{} vs {}", humanize_value(a), humanize_value(b)),
        Value::Null => "unknown".to_string(),
    }
}

/// Renders one atomic predicate as a clause fragment.
pub fn narrate_atom(atom: &Atom) -> String {
    let (raw, group) = parse_pair_feature(&atom.feature);
    let feature = humanize_feature(raw);
    match group {
        PairFeatureGroup::IsSame => {
            let same = matches!(atom.constant, Value::Bool(true))
                || atom.constant.pxql_eq(&Value::str("T"));
            let negated = matches!(atom.op, Op::Ne);
            if same != negated {
                format!("the two executions have the same {feature}")
            } else {
                format!("the {feature} differs between the two executions")
            }
        }
        PairFeatureGroup::Compare => {
            let direction = match atom.constant.as_str() {
                Some("GT") => "much greater for the first execution than for the second",
                Some("LT") => "much smaller for the first execution than for the second",
                Some("SIM") => "similar for both executions",
                _ => "in an unusual relation between the two executions",
            };
            format!("the {feature} is {direction}")
        }
        PairFeatureGroup::Diff => {
            format!("the {feature} changed ({})", humanize_value(&atom.constant))
        }
        PairFeatureGroup::Base => {
            let op_words = match atom.op {
                Op::Eq => "is",
                Op::Ne => "is not",
                Op::Lt => "is below",
                Op::Le => "is at most",
                Op::Gt => "is above",
                Op::Ge => "is at least",
            };
            format!(
                "the shared {feature} {op_words} {}",
                humanize_value(&atom.constant)
            )
        }
    }
}

fn narrate_predicate(predicate: &Predicate) -> String {
    if predicate.is_trivial() {
        return "no particular condition holds".to_string();
    }
    let clauses: Vec<String> = predicate.atoms().iter().map(narrate_atom).collect();
    match clauses.len() {
        1 => clauses.into_iter().next().unwrap(),
        2 => format!("{} and {}", clauses[0], clauses[1]),
        _ => {
            let (last, rest) = clauses.split_last().unwrap();
            format!("{}, and {}", rest.join(", "), last)
        }
    }
}

/// What the user observed, phrased from the query's OBSERVED clause.
fn narrate_observation(query: &BoundQuery) -> String {
    let subject = match query.kind {
        crate::record::ExecutionKind::Job => "job",
        crate::record::ExecutionKind::Task => "task",
    };
    for atom in query.query.observed.atoms() {
        let (raw, group) = parse_pair_feature(&atom.feature);
        if group == PairFeatureGroup::Compare {
            let metric = humanize_feature(raw);
            let phrase = match atom.constant.as_str() {
                Some("GT") => format!(
                    "{subject} {} had a much larger {metric} than {subject} {}",
                    query.left_id, query.right_id
                ),
                Some("LT") => format!(
                    "{subject} {} had a much smaller {metric} than {subject} {}",
                    query.left_id, query.right_id
                ),
                Some("SIM") => format!(
                    "{subject}s {} and {} had a similar {metric}",
                    query.left_id, query.right_id
                ),
                _ => continue,
            };
            return phrase;
        }
    }
    format!(
        "{subject}s {} and {} behaved as described by: {}",
        query.left_id, query.right_id, query.query.observed
    )
}

/// Renders a full explanation in the style of the paper's introduction:
/// *"even though …, <observation> most likely because …"*.
pub fn narrate(query: &BoundQuery, explanation: &Explanation) -> String {
    let despite = query.query.despite.conjoin(&explanation.despite);
    let observation = narrate_observation(query);
    if explanation.because.is_trivial() {
        return format!("{observation}; no further condition was needed to explain this.");
    }
    if despite.is_trivial() {
        format!(
            "{observation}, most likely because {}.",
            narrate_predicate(&explanation.because)
        )
    } else {
        format!(
            "Even though {}, {}, most likely because {}.",
            narrate_predicate(&despite),
            observation,
            narrate_predicate(&explanation.because)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxql::parse_query;

    fn query() -> BoundQuery {
        BoundQuery::new(
            parse_query(
                "DESPITE inputsize_compare = GT\n\
                 OBSERVED duration_compare = SIM\n\
                 EXPECTED duration_compare = GT",
            )
            .unwrap(),
            "job_big",
            "job_small",
        )
    }

    #[test]
    fn narrates_the_motivating_explanation() {
        let explanation = Explanation::because_only(Predicate::from_atoms(vec![
            Atom::new("blocksize", Op::Ge, 128.0 * 1024.0 * 1024.0),
            Atom::new("numinstances", Op::Ge, 100i64),
        ]));
        let text = narrate(&query(), &explanation);
        assert!(text.starts_with("Even though the input size is much greater"));
        assert!(text.contains("similar duration"));
        assert!(text.contains("DFS block size is at least 128 MB"));
        assert!(text.contains("number of instances is at least 100"));
        assert!(text.ends_with('.'));
    }

    #[test]
    fn narrates_issame_and_compare_atoms() {
        assert_eq!(
            narrate_atom(&Atom::eq("avg_cpu_user_isSame", false)),
            "the average cpu user differs between the two executions"
        );
        assert_eq!(
            narrate_atom(&Atom::eq("hostname_isSame", true)),
            "the two executions have the same host"
        );
        assert_eq!(
            narrate_atom(&Atom::eq("avg_load_five_compare", "GT")),
            "the average load five is much greater for the first execution than for the second"
        );
        let diff = narrate_atom(&Atom::eq(
            "pigscript_diff",
            Value::pair(Value::str("a.pig"), Value::str("b.pig")),
        ));
        assert!(diff.contains("Pig script changed"));
        assert!(diff.contains("a.pig vs b.pig"));
    }

    #[test]
    fn trivial_because_clause_is_handled() {
        let text = narrate(&query(), &Explanation::default());
        assert!(text.contains("no further condition"));
    }

    #[test]
    fn numbers_are_humanized() {
        assert_eq!(humanize_number(64.0 * 1024.0 * 1024.0), "64 MB");
        assert_eq!(humanize_number(2.0 * 1024.0 * 1024.0 * 1024.0), "2.0 GB");
        assert_eq!(humanize_number(12.0), "12");
        assert_eq!(humanize_number(1.5), "1.50");
    }
}
