//! Raw feature definitions and the feature catalog.
//!
//! PerfXplain models every job (or task) execution as a flat vector of
//! features: configuration parameters, data characteristics, Hadoop counters
//! and averaged Ganglia metrics, plus the `duration` performance metric
//! itself.  The catalog records each raw feature's name and kind; the pair
//! feature constructor (`crate::pairs`) derives the `isSame` / `compare` /
//! `diff` / base features of Table 1 from it.

use pxql::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The kind of a raw feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Real-valued features (sizes, durations, loads, counters).
    Numeric,
    /// Categorical features (script names, hostnames, flags).
    Nominal,
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureKind::Numeric => write!(f, "numeric"),
            FeatureKind::Nominal => write!(f, "nominal"),
        }
    }
}

/// One raw feature of the execution schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureDef {
    /// Feature name, e.g. `inputsize` or `avg_load_five`.
    pub name: String,
    /// Numeric or nominal.
    pub kind: FeatureKind,
}

impl FeatureDef {
    /// Creates a numeric feature definition.
    pub fn numeric(name: impl Into<String>) -> Self {
        FeatureDef {
            name: name.into(),
            kind: FeatureKind::Numeric,
        }
    }

    /// Creates a nominal feature definition.
    pub fn nominal(name: impl Into<String>) -> Self {
        FeatureDef {
            name: name.into(),
            kind: FeatureKind::Nominal,
        }
    }
}

/// The ordered set of raw features of an execution log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FeatureCatalog {
    defs: Vec<FeatureDef>,
}

impl FeatureCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        FeatureCatalog::default()
    }

    /// Creates a catalog from definitions, deduplicating by name (first
    /// definition wins).
    pub fn from_defs(defs: Vec<FeatureDef>) -> Self {
        let mut catalog = FeatureCatalog::new();
        for def in defs {
            catalog.add(def);
        }
        catalog
    }

    /// Adds a definition unless a feature of the same name already exists.
    /// Returns whether the definition was inserted.
    pub fn add(&mut self, def: FeatureDef) -> bool {
        if self.get(&def.name).is_some() {
            return false;
        }
        self.defs.push(def);
        true
    }

    /// Number of raw features.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The definitions in insertion order.
    pub fn defs(&self) -> &[FeatureDef] {
        &self.defs
    }

    /// Looks up a feature by name.
    pub fn get(&self, name: &str) -> Option<&FeatureDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// The kind of a feature, if known.
    pub fn kind(&self, name: &str) -> Option<FeatureKind> {
        self.get(name).map(|d| d.kind)
    }

    /// Iterates over feature names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.defs.iter().map(|d| d.name.as_str())
    }

    /// Merges `other` into this catalog such that merging per-shard
    /// [`FeatureCatalog::infer`] results equals one joint `infer` over all
    /// shards: the union of the features, numeric winning over nominal
    /// (a feature is numeric as soon as *any* shard saw a numeric value),
    /// re-sorted by name (the order `infer` produces).
    pub fn merge(&mut self, other: &FeatureCatalog) {
        let mut kinds: BTreeMap<&str, FeatureKind> = BTreeMap::new();
        for def in self.defs.iter().chain(&other.defs) {
            kinds
                .entry(&def.name)
                .and_modify(|kind| {
                    if def.kind == FeatureKind::Numeric {
                        *kind = FeatureKind::Numeric;
                    }
                })
                .or_insert(def.kind);
        }
        self.defs = kinds
            .into_iter()
            .map(|(name, kind)| FeatureDef {
                name: name.to_string(),
                kind,
            })
            .collect();
    }

    /// Infers a catalog from a set of feature maps: a feature observed with
    /// any numeric value is numeric, otherwise nominal.  Features seen only
    /// as `Null` default to nominal.
    pub fn infer<'a>(feature_maps: impl IntoIterator<Item = &'a BTreeMap<String, Value>>) -> Self {
        let mut kinds: BTreeMap<String, Option<FeatureKind>> = BTreeMap::new();
        for map in feature_maps {
            for (name, value) in map {
                let entry = kinds.entry(name.clone()).or_insert(None);
                match value {
                    Value::Num(_) => *entry = Some(FeatureKind::Numeric),
                    Value::Str(_) | Value::Bool(_) | Value::Pair(_, _) => {
                        if entry.is_none() {
                            *entry = Some(FeatureKind::Nominal);
                        }
                    }
                    Value::Null => {}
                }
            }
        }
        FeatureCatalog {
            defs: kinds
                .into_iter()
                .map(|(name, kind)| FeatureDef {
                    name,
                    kind: kind.unwrap_or(FeatureKind::Nominal),
                })
                .collect(),
        }
    }
}

/// The reserved name of the performance metric the paper explains.
pub const DURATION_FEATURE: &str = "duration";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_deduplicates_by_name() {
        let mut catalog = FeatureCatalog::new();
        assert!(catalog.add(FeatureDef::numeric("inputsize")));
        assert!(!catalog.add(FeatureDef::nominal("inputsize")));
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.kind("inputsize"), Some(FeatureKind::Numeric));
        assert_eq!(catalog.kind("missing"), None);
    }

    #[test]
    fn from_defs_keeps_order() {
        let catalog = FeatureCatalog::from_defs(vec![
            FeatureDef::numeric("a"),
            FeatureDef::nominal("b"),
            FeatureDef::numeric("a"),
        ]);
        let names: Vec<&str> = catalog.names().collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn merged_shard_catalogs_equal_a_joint_inference() {
        let mut m1 = BTreeMap::new();
        m1.insert("zeta".to_string(), Value::str("z"));
        m1.insert("size".to_string(), Value::Null);
        let mut m2 = BTreeMap::new();
        m2.insert("size".to_string(), Value::Num(4.0));
        m2.insert("alpha".to_string(), Value::Bool(true));

        let joint = FeatureCatalog::infer([&m1, &m2]);
        let mut merged = FeatureCatalog::infer([&m1]);
        merged.merge(&FeatureCatalog::infer([&m2]));
        assert_eq!(merged, joint);
        // Numeric wins regardless of merge direction.
        let mut reversed = FeatureCatalog::infer([&m2]);
        reversed.merge(&FeatureCatalog::infer([&m1]));
        assert_eq!(reversed, joint);
        assert_eq!(merged.kind("size"), Some(FeatureKind::Numeric));
    }

    #[test]
    fn infer_prefers_numeric_when_seen() {
        let mut m1 = BTreeMap::new();
        m1.insert("x".to_string(), Value::Null);
        m1.insert("script".to_string(), Value::str("filter.pig"));
        let mut m2 = BTreeMap::new();
        m2.insert("x".to_string(), Value::Num(3.0));
        m2.insert("only_null".to_string(), Value::Null);
        let catalog = FeatureCatalog::infer([&m1, &m2]);
        assert_eq!(catalog.kind("x"), Some(FeatureKind::Numeric));
        assert_eq!(catalog.kind("script"), Some(FeatureKind::Nominal));
        assert_eq!(catalog.kind("only_null"), Some(FeatureKind::Nominal));
    }

    #[test]
    fn display_kinds() {
        assert_eq!(FeatureKind::Numeric.to_string(), "numeric");
        assert_eq!(FeatureKind::Nominal.to_string(), "nominal");
    }
}
