//! Execution records and the execution log.
//!
//! The log of past MapReduce executions is the only input PerfXplain needs
//! besides the query: each record is one job or one task execution with its
//! flat feature vector and its duration (Section 3.1 of the paper,
//! `Job(JobID, feature1, …, featurek, duration)` and
//! `Task(TaskID, JobID, feature1, …, featurel, duration)`).

use crate::error::{CoreError, Result};
use crate::features::{FeatureCatalog, DURATION_FEATURE};
use pxql::{FeatureSource, SubjectKind, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether a record describes a job or a task execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionKind {
    /// A MapReduce job.
    Job,
    /// A MapReduce task.
    Task,
}

impl From<SubjectKind> for ExecutionKind {
    fn from(kind: SubjectKind) -> Self {
        match kind {
            SubjectKind::Jobs => ExecutionKind::Job,
            SubjectKind::Tasks => ExecutionKind::Task,
        }
    }
}

impl ExecutionKind {
    /// Human-readable name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExecutionKind::Job => "job",
            ExecutionKind::Task => "task",
        }
    }
}

/// One job or task execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionRecord {
    /// Unique identifier (`job_…` or `task_…`).
    pub id: String,
    /// Job or task.
    pub kind: ExecutionKind,
    /// For tasks: the job they belong to.
    pub parent_job: Option<String>,
    /// Raw feature values (the catalog gives their kinds).
    pub features: BTreeMap<String, Value>,
}

impl ExecutionRecord {
    /// Creates a job record.
    pub fn job(id: impl Into<String>) -> Self {
        ExecutionRecord {
            id: id.into(),
            kind: ExecutionKind::Job,
            parent_job: None,
            features: BTreeMap::new(),
        }
    }

    /// Creates a task record belonging to `parent_job`.
    pub fn task(id: impl Into<String>, parent_job: impl Into<String>) -> Self {
        ExecutionRecord {
            id: id.into(),
            kind: ExecutionKind::Task,
            parent_job: Some(parent_job.into()),
            features: BTreeMap::new(),
        }
    }

    /// Sets a feature value (builder style).
    pub fn with_feature(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.features.insert(name.into(), value.into());
        self
    }

    /// Sets a feature value.
    pub fn set_feature(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        self.features.insert(name.into(), value.into());
    }

    /// Reads a feature value (missing features read as `Null`).
    pub fn feature(&self, name: &str) -> Value {
        self.features.get(name).cloned().unwrap_or(Value::Null)
    }

    /// The execution duration in seconds (the `duration` feature), if set.
    pub fn duration(&self) -> Option<f64> {
        self.features.get(DURATION_FEATURE).and_then(Value::as_num)
    }
}

impl FeatureSource for ExecutionRecord {
    fn feature(&self, name: &str) -> Option<Value> {
        self.features.get(name).cloned()
    }
}

/// A log of past executions: jobs, their tasks and the raw feature catalog.
///
/// Every mutation bumps a monotonically increasing **generation counter**
/// ([`ExecutionLog::generation`]).  Long-lived consumers that cache derived
/// views of the log — most notably
/// [`XplainService`](crate::service::XplainService)'s columnar views — key
/// their caches by the generation, so a mutated log can never be observed
/// through a stale view.  The counter is bookkeeping, not content: two logs
/// with identical records compare equal regardless of their generations, and
/// the counter is not serialized (a freshly loaded log starts counting
/// anew).
/// In addition to the generation, the log tracks a per-kind **rewrite
/// watermark** ([`ExecutionLog::rewrite_generation`]): the last generation
/// at which anything *other than a pure record append* happened to that
/// kind — a record replaced, a catalog re-inferred to a different schema, a
/// wholesale reload.  A cached view built at generation `g` can be brought
/// up to date by encoding only the appended tail iff
/// `g >= rewrite_generation(kind)`; otherwise the world changed under it
/// and only a full rebuild is sound.
#[derive(Debug, Clone, Default)]
pub struct ExecutionLog {
    job_catalog: FeatureCatalog,
    task_catalog: FeatureCatalog,
    records: Vec<ExecutionRecord>,
    generation: u64,
    rewrite: [u64; 2],
    /// Records per kind (indexed by [`kind_index`]), maintained by every
    /// mutation so delta consumers can tell in O(1) whether a kind has any
    /// fresh tail at all — the per-kind bookkeeping that keeps interleaved
    /// job/task append storms from scanning (or re-encoding) the kind that
    /// did not change.
    kind_rows: [usize; 2],
}

fn count_kind_rows(records: &[ExecutionRecord]) -> [usize; 2] {
    let mut rows = [0usize; 2];
    for record in records {
        rows[kind_index(record.kind)] += 1;
    }
    rows
}

/// Index into per-kind bookkeeping arrays.
fn kind_index(kind: ExecutionKind) -> usize {
    match kind {
        ExecutionKind::Job => 0,
        ExecutionKind::Task => 1,
    }
}

impl PartialEq for ExecutionLog {
    fn eq(&self, other: &Self) -> bool {
        // The generation is mutation bookkeeping, not log content.
        self.job_catalog == other.job_catalog
            && self.task_catalog == other.task_catalog
            && self.records == other.records
    }
}

impl Serialize for ExecutionLog {
    fn serialize(&self) -> serde::Content {
        // The generation counter is in-memory bookkeeping and stays out of
        // the JSON representation.
        serde::Content::Map(vec![
            ("job_catalog".to_string(), self.job_catalog.serialize()),
            ("task_catalog".to_string(), self.task_catalog.serialize()),
            ("records".to_string(), self.records.serialize()),
        ])
    }
}

impl Deserialize for ExecutionLog {
    fn deserialize(content: &serde::Content) -> std::result::Result<Self, serde::DeError> {
        let entries = content
            .as_map()
            .ok_or_else(|| serde::DeError::expected("map", "ExecutionLog"))?;
        Ok(ExecutionLog {
            job_catalog: Deserialize::deserialize(serde::Content::field(entries, "job_catalog"))?,
            task_catalog: Deserialize::deserialize(serde::Content::field(entries, "task_catalog"))?,
            records: Deserialize::deserialize(serde::Content::field(entries, "records"))?,
            generation: 0,
            rewrite: [0, 0],
            kind_rows: [0, 0],
        }
        .with_recounted_kind_rows())
    }
}

impl ExecutionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ExecutionLog::default()
    }

    /// The log's generation: a counter bumped by every mutation (`push`,
    /// `extend`, `rebuild_catalogs`, …).  Cache keys derived from a log must
    /// include the generation so that stale derived state is never served.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The last generation at which `kind`'s records or catalog changed in
    /// a way a cached view cannot absorb by encoding the appended tail.
    /// See the type docs: a view built at generation `g` may take the delta
    /// path iff `g >= rewrite_generation(kind)`.
    pub fn rewrite_generation(&self, kind: ExecutionKind) -> u64 {
        self.rewrite[kind_index(kind)]
    }

    /// Number of records of `kind`, maintained incrementally (O(1)).  A
    /// cached view holding this many rows of the kind is content-complete
    /// regardless of how many records of the *other* kind were appended
    /// since — the check that lets mixed-kind append storms skip the
    /// untouched kind entirely.
    pub fn rows_of_kind(&self, kind: ExecutionKind) -> usize {
        self.kind_rows[kind_index(kind)]
    }

    fn with_recounted_kind_rows(mut self) -> ExecutionLog {
        self.kind_rows = count_kind_rows(&self.records);
        self
    }

    /// Marks the current generation as a rewrite for both kinds (the
    /// conservative default for every mutation that is not a pure append).
    fn mark_rewrite(&mut self) {
        self.rewrite = [self.generation; 2];
    }

    /// Adds a record.
    pub fn push(&mut self, record: ExecutionRecord) {
        self.kind_rows[kind_index(record.kind)] += 1;
        self.records.push(record);
        self.generation += 1;
        // `push` does not maintain the catalogs, so cached views of the
        // record's kind cannot trust the schema until `rebuild_catalogs`;
        // treat it as a rewrite (use `append` for watermark-clean ingest).
        self.mark_rewrite();
    }

    /// Appends a batch of records while keeping the catalogs exact — the
    /// watermark-clean ingest path.  Per kind, the batch's features are
    /// inferred and merged into the existing catalog
    /// ([`FeatureCatalog::merge`] is proven equivalent to a joint
    /// re-inference); when the merge leaves the catalog unchanged the
    /// kind's rewrite watermark stays put, so cached views refresh by
    /// encoding only this tail.  A batch that *does* change a catalog
    /// (new feature, kind promotion) bumps that kind's watermark: the
    /// schema moved, and views of that kind must rebuild.
    ///
    /// Returns the new generation.
    pub fn append(&mut self, records: Vec<ExecutionRecord>) -> u64 {
        self.generation += 1;
        for kind in [ExecutionKind::Job, ExecutionKind::Task] {
            let mut fresh = records
                .iter()
                .filter(|r| r.kind == kind)
                .map(|r| &r.features)
                .peekable();
            if fresh.peek().is_none() {
                continue;
            }
            let batch = FeatureCatalog::infer(fresh);
            let current = match kind {
                ExecutionKind::Job => &mut self.job_catalog,
                ExecutionKind::Task => &mut self.task_catalog,
            };
            let mut merged = current.clone();
            merged.merge(&batch);
            if merged != *current {
                *current = merged;
                self.rewrite[kind_index(kind)] = self.generation;
            }
        }
        for record in &records {
            self.kind_rows[kind_index(record.kind)] += 1;
        }
        self.records.extend(records);
        self.generation
    }

    /// Adds every record of `other` to this log.
    pub fn extend(&mut self, other: ExecutionLog) {
        self.records.extend(other.records);
        self.rebuild_catalogs();
    }

    /// Crate-internal: assembles a shard log from parts whose catalogs are
    /// already known (the snapshot store persists per-shard catalogs, so
    /// reopening a shard must not pay a re-inference scan).  The caller
    /// guarantees the catalogs reflect the records.
    pub(crate) fn from_parts(
        records: Vec<ExecutionRecord>,
        job_catalog: FeatureCatalog,
        task_catalog: FeatureCatalog,
    ) -> ExecutionLog {
        ExecutionLog {
            job_catalog,
            task_catalog,
            records,
            generation: 1,
            rewrite: [1, 1],
            kind_rows: [0, 0],
        }
        .with_recounted_kind_rows()
    }

    /// Assembles one log from independently ingested shards: records are
    /// concatenated in shard order and the per-shard catalogs are merged
    /// ([`FeatureCatalog::merge`]), so the result equals pushing every
    /// record serially and calling [`ExecutionLog::rebuild_catalogs`] —
    /// without re-scanning any shard.
    ///
    /// Each shard's catalogs must reflect its records (as produced by
    /// `rebuild_catalogs` or any collector); stale shard catalogs propagate
    /// into the merged log.
    pub fn from_shards(shards: Vec<ExecutionLog>) -> ExecutionLog {
        let mut out = ExecutionLog::new();
        out.records
            .reserve(shards.iter().map(|shard| shard.records.len()).sum());
        for shard in shards {
            out.job_catalog.merge(&shard.job_catalog);
            out.task_catalog.merge(&shard.task_catalog);
            for (slot, rows) in shard.kind_rows.iter().enumerate() {
                out.kind_rows[slot] += rows;
            }
            out.records.extend(shard.records);
        }
        out.generation = 1;
        out.rewrite = [1, 1];
        out
    }

    /// Ingests record batches in parallel: the batches are grouped into at
    /// most one shard per hardware thread, each shard's catalogs are
    /// inferred on its own `std::thread::scope` thread (this log's own
    /// records are re-inferred concurrently as well), and the shards are
    /// merged in batch order.  Equivalent to extending with the
    /// concatenated batches and rebuilding the catalogs.
    pub fn extend_parallel(&mut self, batches: Vec<Vec<ExecutionRecord>>) {
        // Group the batches into bounded worker loads up front: batch
        // counts are caller data (e.g. one batch per ingested bundle), so
        // one thread per batch would be unbounded.
        let workers = crate::shard::hardware_threads().min(batches.len()).max(1);
        let group_size = batches.len().div_ceil(workers).max(1);
        let mut groups: Vec<Vec<Vec<ExecutionRecord>>> = Vec::with_capacity(workers);
        let mut batches = batches.into_iter();
        loop {
            let group: Vec<Vec<ExecutionRecord>> = batches.by_ref().take(group_size).collect();
            if group.is_empty() {
                break;
            }
            groups.push(group);
        }

        let (own_job, own_task, shards) = std::thread::scope(|scope| {
            let own = scope.spawn(|| {
                (
                    FeatureCatalog::infer(
                        self.records
                            .iter()
                            .filter(|r| r.kind == ExecutionKind::Job)
                            .map(|r| &r.features),
                    ),
                    FeatureCatalog::infer(
                        self.records
                            .iter()
                            .filter(|r| r.kind == ExecutionKind::Task)
                            .map(|r| &r.features),
                    ),
                )
            });
            let handles: Vec<_> = groups
                .into_iter()
                .map(|group| {
                    scope.spawn(move || {
                        let mut shard = ExecutionLog::new();
                        shard.records = group.into_iter().flatten().collect();
                        shard.rebuild_catalogs();
                        shard
                    })
                })
                .collect();
            let shards: Vec<ExecutionLog> = handles
                .into_iter()
                .map(|handle| handle.join().expect("shard ingest worker panicked"))
                .collect();
            let (own_job, own_task) = own.join().expect("catalog inference panicked");
            (own_job, own_task, shards)
        });
        self.job_catalog = own_job;
        self.task_catalog = own_task;
        for shard in shards {
            self.job_catalog.merge(&shard.job_catalog);
            self.task_catalog.merge(&shard.task_catalog);
            for (slot, rows) in shard.kind_rows.iter().enumerate() {
                self.kind_rows[slot] += rows;
            }
            self.records.extend(shard.records);
        }
        self.generation += 1;
        self.mark_rewrite();
    }

    /// Recomputes the job and task feature catalogs (and the per-kind row
    /// counts) from the stored records.  Call after bulk loading records.
    pub fn rebuild_catalogs(&mut self) {
        self.generation += 1;
        self.mark_rewrite();
        self.kind_rows = count_kind_rows(&self.records);
        self.job_catalog = FeatureCatalog::infer(
            self.records
                .iter()
                .filter(|r| r.kind == ExecutionKind::Job)
                .map(|r| &r.features),
        );
        self.task_catalog = FeatureCatalog::infer(
            self.records
                .iter()
                .filter(|r| r.kind == ExecutionKind::Task)
                .map(|r| &r.features),
        );
    }

    /// The catalog of job features.
    pub fn job_catalog(&self) -> &FeatureCatalog {
        &self.job_catalog
    }

    /// The catalog of task features.
    pub fn task_catalog(&self) -> &FeatureCatalog {
        &self.task_catalog
    }

    /// The catalog for a given execution kind.
    pub fn catalog(&self, kind: ExecutionKind) -> &FeatureCatalog {
        match kind {
            ExecutionKind::Job => &self.job_catalog,
            ExecutionKind::Task => &self.task_catalog,
        }
    }

    /// All records.
    pub fn records(&self) -> &[ExecutionRecord] {
        &self.records
    }

    /// Number of records (jobs + tasks).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The job records.
    pub fn jobs(&self) -> impl Iterator<Item = &ExecutionRecord> {
        self.records.iter().filter(|r| r.kind == ExecutionKind::Job)
    }

    /// The task records.
    pub fn tasks(&self) -> impl Iterator<Item = &ExecutionRecord> {
        self.records
            .iter()
            .filter(|r| r.kind == ExecutionKind::Task)
    }

    /// Records of the given kind.
    pub fn of_kind(&self, kind: ExecutionKind) -> impl Iterator<Item = &ExecutionRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// The tasks that belong to a given job.
    pub fn tasks_of_job<'a>(
        &'a self,
        job_id: &'a str,
    ) -> impl Iterator<Item = &'a ExecutionRecord> {
        self.records.iter().filter(move |r| {
            r.kind == ExecutionKind::Task && r.parent_job.as_deref() == Some(job_id)
        })
    }

    /// Looks up a record by identifier.
    pub fn get(&self, id: &str) -> Option<&ExecutionRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Looks up a record by identifier, failing with a descriptive error.
    pub fn require(&self, id: &str, kind: ExecutionKind) -> Result<&ExecutionRecord> {
        let record = self
            .get(id)
            .ok_or_else(|| CoreError::UnknownExecution(id.to_string()))?;
        if record.kind != kind {
            return Err(CoreError::KindMismatch {
                expected: kind.as_str().to_string(),
                found: record.kind.as_str().to_string(),
            });
        }
        Ok(record)
    }

    /// Builds a new log containing only records selected by `keep` (tasks of
    /// dropped jobs are dropped as well unless `keep` retains them).
    pub fn filter(&self, keep: impl Fn(&ExecutionRecord) -> bool) -> ExecutionLog {
        let mut out = ExecutionLog::new();
        for record in &self.records {
            if keep(record) {
                out.push(record.clone());
            }
        }
        out.rebuild_catalogs();
        out
    }

    /// Builds a new log containing the given jobs and all of their tasks.
    pub fn restrict_to_jobs(&self, job_ids: &[&str]) -> ExecutionLog {
        self.filter(|r| match r.kind {
            ExecutionKind::Job => job_ids.contains(&r.id.as_str()),
            ExecutionKind::Task => r
                .parent_job
                .as_deref()
                .map(|j| job_ids.contains(&j))
                .unwrap_or(false),
        })
    }

    /// Serializes the log to JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| CoreError::Serialization(e.to_string()))
    }

    /// Loads a log from JSON produced by [`ExecutionLog::to_json`].
    pub fn from_json(json: &str) -> Result<ExecutionLog> {
        let mut log: ExecutionLog =
            serde_json::from_str(json).map_err(|e| CoreError::Serialization(e.to_string()))?;
        log.rebuild_catalogs();
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureKind;

    fn sample_log() -> ExecutionLog {
        let mut log = ExecutionLog::new();
        log.push(
            ExecutionRecord::job("job_1")
                .with_feature("inputsize", 1024i64)
                .with_feature("pigscript", "simple-filter.pig")
                .with_feature(DURATION_FEATURE, 120.0),
        );
        log.push(
            ExecutionRecord::job("job_2")
                .with_feature("inputsize", 2048i64)
                .with_feature("pigscript", "simple-groupby.pig")
                .with_feature(DURATION_FEATURE, 240.0),
        );
        log.push(
            ExecutionRecord::task("task_1_m_0", "job_1")
                .with_feature("tasktype", "MAP")
                .with_feature(DURATION_FEATURE, 30.0),
        );
        log.rebuild_catalogs();
        log
    }

    #[test]
    fn catalogs_are_split_by_kind() {
        let log = sample_log();
        assert!(log.job_catalog().get("inputsize").is_some());
        assert!(log.job_catalog().get("tasktype").is_none());
        assert!(log.task_catalog().get("tasktype").is_some());
        assert_eq!(log.jobs().count(), 2);
        assert_eq!(log.tasks().count(), 1);
        assert_eq!(log.of_kind(ExecutionKind::Job).count(), 2);
    }

    #[test]
    fn lookup_and_require() {
        let log = sample_log();
        assert!(log.get("job_1").is_some());
        assert!(log.get("job_99").is_none());
        assert!(log.require("job_1", ExecutionKind::Job).is_ok());
        assert!(matches!(
            log.require("job_99", ExecutionKind::Job),
            Err(CoreError::UnknownExecution(_))
        ));
        assert!(matches!(
            log.require("task_1_m_0", ExecutionKind::Job),
            Err(CoreError::KindMismatch { .. })
        ));
    }

    #[test]
    fn durations_and_features() {
        let log = sample_log();
        let job = log.get("job_1").unwrap();
        assert_eq!(job.duration(), Some(120.0));
        assert_eq!(job.feature("inputsize"), Value::Num(1024.0));
        assert_eq!(job.feature("missing"), Value::Null);
        assert_eq!(FeatureSource::feature(job, "missing"), None);
    }

    #[test]
    fn tasks_of_job_and_restrict() {
        let log = sample_log();
        assert_eq!(log.tasks_of_job("job_1").count(), 1);
        assert_eq!(log.tasks_of_job("job_2").count(), 0);
        let restricted = log.restrict_to_jobs(&["job_2"]);
        assert_eq!(restricted.jobs().count(), 1);
        assert_eq!(restricted.tasks().count(), 0);
        let only_tasks = log.filter(|r| r.kind == ExecutionKind::Task);
        assert_eq!(only_tasks.len(), 1);
    }

    #[test]
    fn json_round_trip() {
        let log = sample_log();
        let json = log.to_json().unwrap();
        let back = ExecutionLog::from_json(&json).unwrap();
        assert_eq!(log, back);
        assert!(ExecutionLog::from_json("{not json").is_err());
    }

    #[test]
    fn per_kind_row_counts_track_every_mutation_path() {
        let mut log = sample_log();
        assert_eq!(log.rows_of_kind(ExecutionKind::Job), 2);
        assert_eq!(log.rows_of_kind(ExecutionKind::Task), 1);

        log.append(vec![
            ExecutionRecord::task("task_1_m_1", "job_1").with_feature(DURATION_FEATURE, 31.0)
        ]);
        assert_eq!(log.rows_of_kind(ExecutionKind::Job), 2);
        assert_eq!(log.rows_of_kind(ExecutionKind::Task), 2);

        let mut extra = ExecutionLog::new();
        extra.push(ExecutionRecord::job("job_3").with_feature(DURATION_FEATURE, 9.0));
        log.extend(extra);
        assert_eq!(log.rows_of_kind(ExecutionKind::Job), 3);

        log.extend_parallel(vec![vec![
            ExecutionRecord::task("task_3_m_0", "job_3").with_feature(DURATION_FEATURE, 2.0)
        ]]);
        assert_eq!(log.rows_of_kind(ExecutionKind::Task), 3);

        let merged = ExecutionLog::from_shards(vec![log.clone(), sample_log()]);
        assert_eq!(merged.rows_of_kind(ExecutionKind::Job), 5);
        assert_eq!(merged.rows_of_kind(ExecutionKind::Task), 4);

        let filtered = log.filter(|r| r.kind == ExecutionKind::Task);
        assert_eq!(filtered.rows_of_kind(ExecutionKind::Job), 0);
        assert_eq!(filtered.rows_of_kind(ExecutionKind::Task), 3);

        let back = ExecutionLog::from_json(&log.to_json().unwrap()).unwrap();
        assert_eq!(back.rows_of_kind(ExecutionKind::Job), 3);
        assert_eq!(back.rows_of_kind(ExecutionKind::Task), 3);
    }

    #[test]
    fn generation_bumps_on_every_mutation() {
        let mut log = ExecutionLog::new();
        assert_eq!(log.generation(), 0);
        log.push(ExecutionRecord::job("job_1").with_feature("inputsize", 1i64));
        let after_push = log.generation();
        assert!(after_push > 0);
        log.rebuild_catalogs();
        let after_rebuild = log.generation();
        assert!(after_rebuild > after_push);
        let mut other = ExecutionLog::new();
        other.push(ExecutionRecord::job("job_2"));
        log.extend(other);
        assert!(log.generation() > after_rebuild);
    }

    #[test]
    fn equality_and_serialization_ignore_the_generation() {
        let log = sample_log();
        let mut touched = log.clone();
        touched.rebuild_catalogs();
        assert_ne!(log.generation(), touched.generation());
        assert_eq!(log, touched);

        // The counter is not part of the JSON representation.
        let json = log.to_json().unwrap();
        assert!(!json.contains("generation"));
    }

    #[test]
    fn append_keeps_catalogs_exact_without_bumping_the_watermark() {
        let mut log = sample_log();
        let clean = log.generation();
        assert!(log.rewrite_generation(ExecutionKind::Job) <= clean);
        let job_watermark = log.rewrite_generation(ExecutionKind::Job);
        let task_watermark = log.rewrite_generation(ExecutionKind::Task);

        // A batch whose features the catalog already knows: content must
        // equal the push + rebuild path, but the watermark must not move.
        let batch = vec![
            ExecutionRecord::job("job_3")
                .with_feature("inputsize", 4096i64)
                .with_feature("pigscript", "simple-join.pig")
                .with_feature(DURATION_FEATURE, 60.0),
            ExecutionRecord::task("task_3_m_0", "job_3")
                .with_feature("tasktype", "REDUCE")
                .with_feature(DURATION_FEATURE, 10.0),
        ];
        let mut serial = log.clone();
        for record in batch.clone() {
            serial.push(record);
        }
        serial.rebuild_catalogs();

        let generation = log.append(batch);
        assert!(generation > clean);
        assert_eq!(log, serial, "append diverged from push + rebuild");
        assert_eq!(log.rewrite_generation(ExecutionKind::Job), job_watermark);
        assert_eq!(log.rewrite_generation(ExecutionKind::Task), task_watermark);
    }

    #[test]
    fn append_with_a_new_feature_bumps_only_that_kinds_watermark() {
        let mut log = sample_log();
        let task_watermark = log.rewrite_generation(ExecutionKind::Task);
        let generation = log.append(vec![
            ExecutionRecord::job("job_3").with_feature("brand_new", 1i64)
        ]);
        assert_eq!(log.rewrite_generation(ExecutionKind::Job), generation);
        assert_eq!(log.rewrite_generation(ExecutionKind::Task), task_watermark);
        assert!(log.job_catalog().get("brand_new").is_some());

        // And the merged catalog equals a full re-inference.
        let mut rebuilt = log.clone();
        rebuilt.rebuild_catalogs();
        assert_eq!(log, rebuilt);
    }

    #[test]
    fn non_append_mutations_raise_the_watermark() {
        let mut log = sample_log();
        log.push(ExecutionRecord::job("job_9"));
        assert_eq!(log.rewrite_generation(ExecutionKind::Job), log.generation());
        assert_eq!(
            log.rewrite_generation(ExecutionKind::Task),
            log.generation()
        );
    }

    #[test]
    fn extend_merges_and_rebuilds() {
        let mut log = sample_log();
        let mut other = ExecutionLog::new();
        other.push(ExecutionRecord::job("job_3").with_feature("newfeature", 1i64));
        log.extend(other);
        assert_eq!(log.jobs().count(), 3);
        assert!(log.job_catalog().get("newfeature").is_some());
    }

    /// Batches of records spread over shards, with shard-local features and
    /// a feature whose kind only resolves to numeric in a later shard.
    fn shard_batches() -> Vec<Vec<ExecutionRecord>> {
        vec![
            vec![
                ExecutionRecord::job("job_a")
                    .with_feature("inputsize", 1.0e9)
                    .with_feature("mixed", Value::Null)
                    .with_feature(DURATION_FEATURE, 100.0),
                ExecutionRecord::task("task_a_m_0", "job_a").with_feature("tasktype", "MAP"),
            ],
            vec![ExecutionRecord::job("job_b")
                .with_feature("inputsize", 2.0e9)
                .with_feature("mixed", 7.0)
                .with_feature("only_b", "nominal")],
            vec![ExecutionRecord::job("job_c").with_feature(DURATION_FEATURE, 50.0)],
        ]
    }

    #[test]
    fn from_shards_equals_the_serial_ingest() {
        let batches = shard_batches();
        let mut serial = ExecutionLog::new();
        for record in batches.iter().flatten() {
            serial.push(record.clone());
        }
        serial.rebuild_catalogs();

        let shards: Vec<ExecutionLog> = batches
            .into_iter()
            .map(|batch| {
                let mut shard = ExecutionLog::new();
                for record in batch {
                    shard.push(record);
                }
                shard.rebuild_catalogs();
                shard
            })
            .collect();
        let merged = ExecutionLog::from_shards(shards);
        assert_eq!(merged, serial);
        assert_eq!(
            merged.job_catalog().kind("mixed"),
            Some(FeatureKind::Numeric)
        );
        assert!(merged.generation() > 0);
    }

    #[test]
    fn extend_parallel_equals_extend() {
        let batches = shard_batches();
        let mut serial = sample_log();
        let mut bulk = ExecutionLog::new();
        for record in batches.iter().flatten() {
            bulk.push(record.clone());
        }
        serial.extend(bulk);

        let mut parallel = sample_log();
        let generation_before = parallel.generation();
        parallel.extend_parallel(batches);
        assert_eq!(parallel, serial);
        assert!(parallel.generation() > generation_before);

        // Empty batch lists are a no-op on the records but still recompute
        // the catalogs (mirroring `extend` with an empty log).
        let before = parallel.clone();
        parallel.extend_parallel(Vec::new());
        assert_eq!(parallel, before);
    }
}
