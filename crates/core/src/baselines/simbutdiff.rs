//! The SimButDiff baseline (Section 5.2, Algorithm 2 of the paper).
//!
//! Unlike RuleOfThumb this technique does look at the query: it finds the
//! training pairs that are *similar* to the pair of interest with respect to
//! their `isSame` features, and then asks, for every `isSame` feature, a
//! what-if question: among similar pairs that *disagree* with the pair of
//! interest on this feature, what fraction performed as expected?  Features
//! with the highest fractions form the explanation, phrased as
//! `f_isSame = <the pair of interest's value>`.

use crate::config::ExplainConfig;
use crate::error::Result;
use crate::explanation::Explanation;
use crate::pairs::{PairCatalog, PairExample, PairFeatureGroup};
use crate::query::BoundQuery;
use crate::record::ExecutionLog;
use crate::training::{collect_related_pairs, TrainingSet};
use pxql::{Atom, Predicate, Value};

/// The SimButDiff explanation generator.
#[derive(Debug, Clone, Default)]
pub struct SimButDiff {
    config: ExplainConfig,
}

/// The what-if score of one `isSame` feature.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfScore {
    /// The `isSame` pair-feature name.
    pub feature: String,
    /// Number of similar pairs disagreeing with the pair of interest on the
    /// feature.
    pub disagreeing: usize,
    /// Among those, the number that performed as expected.
    pub expected: usize,
}

impl WhatIfScore {
    /// The fraction `expected / disagreeing` (0 when nothing disagrees).
    pub fn score(&self) -> f64 {
        if self.disagreeing == 0 {
            0.0
        } else {
            self.expected as f64 / self.disagreeing as f64
        }
    }
}

impl SimButDiff {
    /// Creates the baseline with the given configuration.
    pub fn new(config: ExplainConfig) -> Self {
        SimButDiff { config }
    }

    /// The `isSame` feature names of the log's catalog for the query's kind,
    /// excluding the ones derived from the query's own performance metric.
    fn is_same_features(&self, log: &ExecutionLog, query: &BoundQuery) -> Vec<String> {
        let excluded = crate::query::excluded_raw_features(query, &self.config);
        PairCatalog::from_raw(log.catalog(query.kind))
            .defs()
            .iter()
            .filter(|d| d.group == PairFeatureGroup::IsSame)
            .filter(|d| !excluded.iter().any(|x| x == &d.raw))
            .map(|d| d.name.clone())
            .collect()
    }

    /// Number of `isSame` features on which two pairs agree (missing values
    /// on both sides count as agreement, mirroring Algorithm 2's use of the
    /// reduced representation).
    fn agreement(poi: &PairExample, other: &PairExample, features: &[String]) -> usize {
        features
            .iter()
            .filter(|f| {
                let a = poi.feature(f);
                let b = other.feature(f);
                if a.is_null() && b.is_null() {
                    true
                } else {
                    a.pxql_eq(&b)
                }
            })
            .count()
    }

    /// Computes the per-feature what-if scores over the training pairs that
    /// are similar to the pair of interest.
    pub fn what_if_scores(
        &self,
        poi: &PairExample,
        set: &TrainingSet,
        is_same_features: &[String],
    ) -> Vec<WhatIfScore> {
        let threshold =
            (self.config.simbutdiff_similarity * is_same_features.len() as f64).ceil() as usize;
        let similar: Vec<(&PairExample, bool)> = set
            .iter()
            .filter(|(example, _)| Self::agreement(poi, example, is_same_features) >= threshold)
            .collect();

        let mut scores = Vec::with_capacity(is_same_features.len());
        for feature in is_same_features {
            let poi_value = poi.feature(feature);
            let mut disagreeing = 0usize;
            let mut expected = 0usize;
            for (example, observed) in &similar {
                let value = example.feature(feature);
                let agrees = if poi_value.is_null() && value.is_null() {
                    true
                } else {
                    poi_value.pxql_eq(&value)
                };
                if !agrees {
                    disagreeing += 1;
                    if !observed {
                        expected += 1;
                    }
                }
            }
            scores.push(WhatIfScore {
                feature: feature.clone(),
                disagreeing,
                expected,
            });
        }
        scores.sort_by(|a, b| {
            b.score()
                .partial_cmp(&a.score())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.disagreeing.cmp(&a.disagreeing))
        });
        scores
    }

    /// Generates the explanation for a query.
    pub fn explain(&self, log: &ExecutionLog, query: &BoundQuery) -> Result<Explanation> {
        let poi = query.pair_of_interest(log, self.config.sim_threshold)?;
        let is_same_features = self.is_same_features(log, query);

        // Algorithm 2 line 1: the training examples related to the query.
        // The balanced sample keeps the what-if fractions meaningful while
        // bounding the cost on large logs.
        let (records, related) = collect_related_pairs(log, query, &self.config);
        let set =
            crate::training::build_training_set(log, query, &records, &related, &self.config)?;

        let scores = self.what_if_scores(&poi, &set, &is_same_features);
        let atoms: Vec<Atom> = scores
            .iter()
            .filter(|s| s.disagreeing > 0)
            .take(self.config.width)
            .map(|s| {
                let value = poi.feature(&s.feature);
                Atom {
                    feature: s.feature.clone(),
                    op: pxql::Op::Eq,
                    constant: if value.is_null() { Value::Null } else { value },
                }
            })
            .collect();
        Ok(Explanation::because_only(Predicate::from_atoms(atoms)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ExecutionRecord;
    use pxql::parse_query;

    /// Jobs whose duration depends only on the number of instances; the
    /// pair of interest agrees on numinstances (and so has the same
    /// runtime), and similar pairs that *disagree* on numinstances mostly
    /// perform "as expected" (different runtimes).
    fn log() -> ExecutionLog {
        let mut log = ExecutionLog::new();
        for i in 0..36 {
            let instances = [2.0, 8.0, 16.0][i % 3];
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("numinstances", instances)
                    .with_feature("inputsize", 1.0e9)
                    .with_feature("pigscript", "simple-filter.pig")
                    .with_feature("duration", 1000.0 / instances + (i % 2) as f64),
            );
        }
        log.rebuild_catalogs();
        log
    }

    fn query() -> BoundQuery {
        // Why did these two jobs have the same duration? (they ran on the
        // same number of instances)
        let q =
            parse_query("OBSERVED duration_compare = SIM\nEXPECTED duration_compare = GT").unwrap();
        BoundQuery::new(q, "job_0", "job_3")
    }

    /// The test log has only three usable raw features, so the paper's 0.9
    /// similarity threshold would forbid any disagreement; a lower threshold
    /// plays the role 0.9 plays on the 36/64-feature logs of the paper.
    fn test_config() -> ExplainConfig {
        ExplainConfig {
            simbutdiff_similarity: 0.6,
            ..ExplainConfig::default()
        }
    }

    #[test]
    fn what_if_analysis_finds_numinstances() {
        let baseline = SimButDiff::new(test_config().with_width(1));
        let explanation = baseline.explain(&log(), &query()).unwrap();
        assert_eq!(explanation.width(), 1);
        let atom = &explanation.because.atoms()[0];
        assert_eq!(atom.feature, "numinstances_isSame");
        // The pair of interest agrees on the instance count, so the
        // explanation states that fact.
        assert_eq!(atom.constant, Value::Bool(true));
    }

    #[test]
    fn scores_order_by_expected_fraction() {
        let log = log();
        let q = query();
        let config = test_config();
        let baseline = SimButDiff::new(config.clone());
        let poi = q.pair_of_interest(&log, config.sim_threshold).unwrap();
        let set = crate::training::prepare_training_set(&log, &q, &config).unwrap();
        let features = baseline.is_same_features(&log, &q);
        let scores = baseline.what_if_scores(&poi, &set, &features);
        assert!(!scores.is_empty());
        // Scores are sorted in descending order.
        for window in scores.windows(2) {
            assert!(window[0].score() >= window[1].score() - 1e-12);
        }
        // numinstances has the strongest what-if effect.
        assert_eq!(scores[0].feature, "numinstances_isSame");
        assert!(scores[0].score() > 0.5);
    }

    #[test]
    fn explanation_is_applicable_to_the_pair_of_interest() {
        let log = log();
        let q = query();
        let baseline = SimButDiff::new(test_config().with_width(3));
        let explanation = baseline.explain(&log, &q).unwrap();
        let poi = q.pair_of_interest(&log, 0.1).unwrap();
        assert!(explanation.is_applicable(&poi));
    }
}
