//! The two naïve explanation-generation baselines of Section 5.

pub mod ruleofthumb;
pub mod simbutdiff;

pub use ruleofthumb::RuleOfThumb;
pub use simbutdiff::SimButDiff;
