//! The RuleOfThumb baseline (Section 5.1 of the paper).
//!
//! The technique works in two stages:
//!
//! 1. **Offline**: identify the raw features that have a high impact on
//!    runtime *in general*, independently of any query.  The paper uses the
//!    Relief feature-estimation technique because it copes with numeric and
//!    nominal attributes and with missing values.  We label each execution
//!    by whether its duration is above the median and rank the remaining
//!    raw features with Relief.
//! 2. **Per query**: return the top-`w` important features on which the two
//!    executions of interest *disagree*, as a conjunction of
//!    `f_isSame = F` predicates.
//!
//! The technique ignores the query's clauses entirely, which is exactly why
//! it fails on queries whose answer is not "an important feature differs".

use crate::config::ExplainConfig;
use crate::error::Result;
use crate::explanation::Explanation;
use crate::features::{FeatureKind, DURATION_FEATURE};
use crate::pairs::is_same_name;
use crate::query::BoundQuery;
use crate::record::ExecutionLog;
use mlcore::{relief_weights, AttrValue, Attribute, Dataset, ReliefConfig};
use pxql::{Atom, Predicate, Value};

/// The RuleOfThumb explanation generator.
#[derive(Debug, Clone, Default)]
pub struct RuleOfThumb {
    config: ExplainConfig,
}

/// A raw feature together with its Relief importance.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedFeature {
    /// Raw feature name.
    pub name: String,
    /// Relief weight (higher is more important).
    pub weight: f64,
}

impl RuleOfThumb {
    /// Creates the baseline with the given configuration.
    pub fn new(config: ExplainConfig) -> Self {
        RuleOfThumb { config }
    }

    /// Ranks the raw features of the log by their general impact on
    /// duration.  This corresponds to the offline stage of the technique and
    /// can be reused across queries.
    pub fn rank_features(&self, log: &ExecutionLog, query: &BoundQuery) -> Vec<RankedFeature> {
        let catalog = log.catalog(query.kind);
        let records: Vec<_> = log.of_kind(query.kind).collect();
        if records.len() < 2 {
            return Vec::new();
        }

        // Median duration defines the binary label.  NaN durations are
        // treated as missing (they would otherwise poison the sort and the
        // median), matching the trainers' NaN-as-missing rule.
        let mut durations: Vec<f64> = records
            .iter()
            .filter_map(|r| r.duration())
            .filter(|d| !d.is_nan())
            .collect();
        durations.sort_by(|a, b| a.partial_cmp(b).expect("NaN durations were filtered"));
        if durations.is_empty() {
            return Vec::new();
        }
        let median = durations[durations.len() / 2];

        // One attribute per raw feature except the duration itself.
        let feature_names: Vec<&str> = catalog.names().filter(|n| *n != DURATION_FEATURE).collect();
        let attributes: Vec<Attribute> = feature_names
            .iter()
            .map(|name| match catalog.kind(name) {
                Some(FeatureKind::Numeric) => Attribute::numeric(*name),
                _ => Attribute::nominal(*name),
            })
            .collect();
        let mut dataset = Dataset::new(attributes);
        for record in &records {
            let row: Vec<AttrValue> = feature_names
                .iter()
                .enumerate()
                .map(|(i, name)| match record.feature(name) {
                    Value::Num(v) => AttrValue::Num(v),
                    Value::Null => AttrValue::Missing,
                    other => {
                        let id = dataset
                            .attribute_mut(i)
                            .dictionary
                            .intern(&other.to_string());
                        AttrValue::Nom(id)
                    }
                })
                .collect();
            let label = record.duration().map(|d| d > median).unwrap_or(false);
            dataset.push(row, label);
        }

        let weights = relief_weights(
            &dataset,
            ReliefConfig {
                iterations: self.config.relief_iterations,
                seed: self.config.seed,
            },
        );
        let mut ranked: Vec<RankedFeature> = feature_names
            .iter()
            .zip(weights)
            .map(|(name, weight)| RankedFeature {
                name: (*name).to_string(),
                weight,
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ranked
    }

    /// Generates the explanation for a query: the top-`width` important
    /// features the pair of interest disagrees on.
    pub fn explain(&self, log: &ExecutionLog, query: &BoundQuery) -> Result<Explanation> {
        let poi = query.pair_of_interest(log, self.config.sim_threshold)?;
        let ranked = self.rank_features(log, query);

        let mut atoms = Vec::new();
        for feature in &ranked {
            if atoms.len() >= self.config.width {
                break;
            }
            let is_same = poi.feature(&is_same_name(&feature.name));
            if is_same == Value::Bool(false) {
                atoms.push(Atom::eq(is_same_name(&feature.name), false));
            }
        }
        Ok(Explanation::because_only(Predicate::from_atoms(atoms)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ExecutionRecord;
    use pxql::parse_query;

    /// Duration is driven entirely by `inputsize`; `iosortfactor` is noise.
    fn log() -> ExecutionLog {
        let mut log = ExecutionLog::new();
        for i in 0..40 {
            let input = if i % 2 == 0 { 1.0e9 } else { 4.0e9 };
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("inputsize", input)
                    .with_feature("iosortfactor", (10 + (i % 7)) as f64)
                    .with_feature("numinstances", 8.0)
                    .with_feature("duration", input / 1.0e7 + (i % 3) as f64),
            );
        }
        log.rebuild_catalogs();
        log
    }

    fn query() -> BoundQuery {
        let q =
            parse_query("OBSERVED duration_compare = GT\nEXPECTED duration_compare = SIM").unwrap();
        BoundQuery::new(q, "job_1", "job_0")
    }

    #[test]
    fn inputsize_is_ranked_most_important() {
        let baseline = RuleOfThumb::new(ExplainConfig::default());
        let ranked = baseline.rank_features(&log(), &query());
        assert!(!ranked.is_empty());
        assert_eq!(ranked[0].name, "inputsize", "ranking: {ranked:?}");
        // The duration itself must not be ranked.
        assert!(ranked.iter().all(|f| f.name != DURATION_FEATURE));
    }

    #[test]
    fn explanation_points_at_differing_important_features() {
        let baseline = RuleOfThumb::new(ExplainConfig::default().with_width(2));
        let explanation = baseline.explain(&log(), &query()).unwrap();
        // The pair of interest agrees on numinstances, so only differing
        // features can appear, and inputsize_isSame = F must be among them.
        assert!(explanation
            .because
            .atoms()
            .iter()
            .any(|a| a.feature == "inputsize_isSame"));
        for atom in explanation.because.atoms() {
            assert!(atom.feature.ends_with("_isSame"));
            assert_eq!(atom.constant, Value::Bool(false));
            assert_ne!(atom.feature, "numinstances_isSame");
        }
    }

    #[test]
    fn empty_log_produces_empty_ranking() {
        let baseline = RuleOfThumb::new(ExplainConfig::default());
        let empty = ExecutionLog::new();
        assert!(baseline.rank_features(&empty, &query()).is_empty());
    }
}
