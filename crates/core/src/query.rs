//! Binding PXQL queries to an execution log and classifying pairs.

use crate::error::{CoreError, Result};
use crate::pairs::{compute_selected_pair_features, PairExample};
use crate::record::{ExecutionKind, ExecutionLog};
use pxql::{FeatureSource, PairBinding, PxqlQuery};
use serde::{Deserialize, Serialize};

/// How a pair of executions relates to a query (Definitions 7–9 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairLabel {
    /// The pair satisfies `des ∧ obs`: it *performed as observed*.
    Observed,
    /// The pair satisfies `des ∧ exp`: it *performed as expected*.
    Expected,
    /// The pair does not satisfy `des ∧ (obs ∨ exp)`: it is unrelated to the
    /// query and is not used for training.
    Unrelated,
}

impl PairLabel {
    /// Whether the pair is related to the query (observed or expected).
    pub fn is_related(&self) -> bool {
        !matches!(self, PairLabel::Unrelated)
    }
}

/// A PXQL query bound to a concrete pair of executions in a log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundQuery {
    /// The parsed query (despite / observed / expected clauses).
    pub query: PxqlQuery,
    /// Job or task query.
    pub kind: ExecutionKind,
    /// Identifier of the first execution of the pair of interest.
    pub left_id: String,
    /// Identifier of the second execution of the pair of interest.
    pub right_id: String,
}

impl BoundQuery {
    /// Binds a query to explicit identifiers.
    pub fn new(query: PxqlQuery, left_id: impl Into<String>, right_id: impl Into<String>) -> Self {
        let kind = ExecutionKind::from(query.subject);
        BoundQuery {
            query,
            kind,
            left_id: left_id.into(),
            right_id: right_id.into(),
        }
    }

    /// Binds a query using the literal identifiers of its `WHERE` clause.
    pub fn from_query(query: PxqlQuery) -> Result<Self> {
        let left = match &query.left_binding {
            PairBinding::Literal(id) => id.clone(),
            PairBinding::Placeholder => return Err(CoreError::Pxql(
                "the first execution's identifier is a placeholder; supply it with BoundQuery::new"
                    .to_string(),
            )),
        };
        let right = match &query.right_binding {
            PairBinding::Literal(id) => id.clone(),
            PairBinding::Placeholder => {
                return Err(CoreError::Pxql(
                    "the second execution's identifier is a placeholder; supply it with BoundQuery::new"
                        .to_string(),
                ))
            }
        };
        Ok(BoundQuery::new(query, left, right))
    }

    /// The pair-feature names mentioned by the query's three clauses.
    pub fn mentioned_features(&self) -> Vec<&str> {
        let mut names = Vec::new();
        for predicate in [
            &self.query.despite,
            &self.query.observed,
            &self.query.expected,
        ] {
            for name in predicate.features() {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
        names
    }

    /// Classifies a pair from its (possibly partial) pair features.
    pub fn classify<S: FeatureSource>(&self, features: &S) -> PairLabel {
        if !self.query.despite.eval(features) {
            return PairLabel::Unrelated;
        }
        if self.query.expected.eval(features) {
            return PairLabel::Expected;
        }
        if self.query.observed.eval(features) {
            return PairLabel::Observed;
        }
        PairLabel::Unrelated
    }

    /// Builds the pair of interest from the log, checking that both
    /// executions exist and have the right kind.
    pub fn pair_of_interest(&self, log: &ExecutionLog, sim_threshold: f64) -> Result<PairExample> {
        let left = log.require(&self.left_id, self.kind)?;
        let right = log.require(&self.right_id, self.kind)?;
        Ok(PairExample::build(
            log.catalog(self.kind),
            left,
            right,
            sim_threshold,
        ))
    }

    /// Verifies the semantic preconditions of Definition 1: the pair of
    /// interest satisfies `des` and `obs` but not `exp`.
    pub fn verify_preconditions(
        &self,
        log: &ExecutionLog,
        sim_threshold: f64,
    ) -> Result<PairExample> {
        let pair = self.pair_of_interest(log, sim_threshold)?;
        if !self.query.despite.eval(&pair) {
            return Err(CoreError::QueryPreconditionViolated(format!(
                "the pair of interest does not satisfy the DESPITE clause ({})",
                self.query.despite
            )));
        }
        if !self.query.observed.eval(&pair) {
            return Err(CoreError::QueryPreconditionViolated(format!(
                "the pair of interest does not satisfy the OBSERVED clause ({})",
                self.query.observed
            )));
        }
        if self.query.expected.eval(&pair) {
            return Err(CoreError::QueryPreconditionViolated(format!(
                "the pair of interest satisfies the EXPECTED clause ({}), so there is nothing to explain",
                self.query.expected
            )));
        }
        Ok(pair)
    }

    /// Classifies a candidate pair of records from the log, computing only
    /// the pair features the query mentions.
    pub fn classify_records(
        &self,
        log: &ExecutionLog,
        left: &crate::record::ExecutionRecord,
        right: &crate::record::ExecutionRecord,
        sim_threshold: f64,
    ) -> PairLabel {
        let needed = self.mentioned_features();
        let features = compute_selected_pair_features(
            log.catalog(self.kind),
            left,
            right,
            sim_threshold,
            &needed,
        );
        self.classify(&features)
    }
}

/// The raw features that must never appear in generated explanation clauses
/// for this query: the raw features behind the pair features mentioned in
/// the OBSERVED/EXPECTED clauses (explaining the performance metric with
/// itself would be circular) plus any exclusions configured by the caller.
pub fn excluded_raw_features(
    query: &BoundQuery,
    config: &crate::config::ExplainConfig,
) -> Vec<String> {
    let mut excluded = config.excluded_raw_features.clone();
    for predicate in [&query.query.observed, &query.query.expected] {
        for feature in predicate.features() {
            let (raw, _) = crate::pairs::parse_pair_feature(feature);
            if !excluded.iter().any(|e| e == raw) {
                excluded.push(raw.to_string());
            }
        }
    }
    excluded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairs::DEFAULT_SIM_THRESHOLD;
    use crate::record::ExecutionRecord;
    use pxql::parse_query;

    fn log() -> ExecutionLog {
        let mut log = ExecutionLog::new();
        for (id, input, duration) in [
            ("job_big", 32.0e9, 1800.0),
            ("job_small", 1.0e9, 1750.0),
            ("job_fast", 1.0e9, 300.0),
        ] {
            log.push(
                ExecutionRecord::job(id)
                    .with_feature("inputsize", input)
                    .with_feature("numinstances", 8.0)
                    .with_feature("duration", duration),
            );
        }
        log.rebuild_catalogs();
        log
    }

    fn query() -> PxqlQuery {
        parse_query(
            "DESPITE inputsize_compare = GT\n\
             OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap()
    }

    #[test]
    fn binding_and_preconditions() {
        let log = log();
        let bound = BoundQuery::new(query(), "job_big", "job_small");
        let pair = bound
            .verify_preconditions(&log, DEFAULT_SIM_THRESHOLD)
            .unwrap();
        assert_eq!(pair.left_id, "job_big");

        // Swapping the pair violates the despite clause.
        let swapped = BoundQuery::new(query(), "job_small", "job_big");
        assert!(matches!(
            swapped.verify_preconditions(&log, DEFAULT_SIM_THRESHOLD),
            Err(CoreError::QueryPreconditionViolated(_))
        ));

        // An unknown id fails.
        let unknown = BoundQuery::new(query(), "job_big", "job_nope");
        assert!(matches!(
            unknown.verify_preconditions(&log, DEFAULT_SIM_THRESHOLD),
            Err(CoreError::UnknownExecution(_))
        ));
    }

    #[test]
    fn from_query_requires_literals() {
        let q = query();
        assert!(BoundQuery::from_query(q.clone()).is_err());
        let q = q.with_pair("job_big", "job_small");
        let bound = BoundQuery::from_query(q).unwrap();
        assert_eq!(bound.left_id, "job_big");
        assert_eq!(bound.kind, ExecutionKind::Job);
    }

    #[test]
    fn classification_of_candidate_pairs() {
        let log = log();
        let bound = BoundQuery::new(query(), "job_big", "job_small");
        let big = log.get("job_big").unwrap();
        let small = log.get("job_small").unwrap();
        let fast = log.get("job_fast").unwrap();

        // big vs small: larger input, similar duration -> observed.
        assert_eq!(
            bound.classify_records(&log, big, small, DEFAULT_SIM_THRESHOLD),
            PairLabel::Observed
        );
        // big vs fast: larger input, much slower -> expected.
        assert_eq!(
            bound.classify_records(&log, big, fast, DEFAULT_SIM_THRESHOLD),
            PairLabel::Expected
        );
        // small vs fast: same input size (SIM, not GT) -> unrelated.
        assert_eq!(
            bound.classify_records(&log, small, fast, DEFAULT_SIM_THRESHOLD),
            PairLabel::Unrelated
        );
        assert!(PairLabel::Observed.is_related());
        assert!(!PairLabel::Unrelated.is_related());
    }

    #[test]
    fn mentioned_features_are_deduplicated() {
        let bound = BoundQuery::new(query(), "a", "b");
        let features = bound.mentioned_features();
        assert_eq!(features, vec!["inputsize_compare", "duration_compare"]);
    }

    #[test]
    fn excluded_features_cover_the_query_target() {
        let bound = BoundQuery::new(query(), "a", "b");
        let mut config = crate::config::ExplainConfig::default();
        config.excluded_raw_features.push("start_time".to_string());
        let excluded = excluded_raw_features(&bound, &config);
        assert!(excluded.contains(&"duration".to_string()));
        assert!(excluded.contains(&"start_time".to_string()));
        // The despite clause's feature (inputsize) is *not* excluded.
        assert!(!excluded.contains(&"inputsize".to_string()));
    }
}
