//! Columnar encoded view of an execution log and query compilation.
//!
//! The training pipeline classifies O(n²) candidate pairs of executions.
//! The original implementation rebuilt a `BTreeMap<String, Value>` of pair
//! features — with `format!`-built keys — for every single pair.  This
//! module replaces that hot path with a **columnar, zero-re-encoding**
//! design:
//!
//! * [`ColumnarLog`] encodes the per-kind records of an [`ExecutionLog`]
//!   once into per-feature columns ([`mlcore::ColumnStore`]): numeric cells
//!   are stored inline, nominal cells are interned against a per-column
//!   dictionary keyed by the value's canonical PXQL text, and the original
//!   [`Value`] behind every interned id is retained for lossless decoding.
//! * [`CompiledQuery`] resolves a [`BoundQuery`]'s three clauses against the
//!   columns once — feature names are parsed into `(column index, pair
//!   feature group)` pairs and constants are pre-analysed — so classifying
//!   a candidate pair is a handful of integer/float comparisons with **no
//!   allocation and no string hashing**.
//!
//! Semantics match the map-based path (`compute_selected_pair_features` +
//! `BoundQuery::classify`) exactly, with one documented exception: two raw
//! nominal values that differ textually but compare equal under PXQL's
//! cross-type rules (e.g. `Bool(true)` vs the string `"true"`) intern to
//! different ids and therefore compare unequal here.  Canonical log
//! producers never mix value types within a feature, and `T`/`F` strings —
//! the forms the paper's queries use — share their canonical text with the
//! booleans they denote.

use crate::features::{FeatureCatalog, FeatureKind};
use crate::pairs::{compare_index, parse_pair_feature, PairFeatureGroup, COMPARE_VALUES};
use crate::query::{BoundQuery, PairLabel};
use crate::record::{ExecutionKind, ExecutionLog, ExecutionRecord};
use mlcore::{AttrValue, Attribute, ColumnStore, FxHashMap};
use pxql::{Op, Predicate, Value};
use std::sync::Arc;

/// Row count at or above which [`ColumnarLog::build_auto`] switches from the
/// single-shot encode to the sharded parallel encode.  Encoding costs a few
/// microseconds per record-feature, so below ~8k records the whole encode
/// finishes in the time it takes to set a thread scope up.
pub const SHARDED_BUILD_THRESHOLD: usize = 8192;

/// The columnar encoded view of the records of one execution kind.
///
/// The view is **self-contained**: it owns a snapshot of the records it
/// encodes, so it can outlive (and be shared independently of) the
/// [`ExecutionLog`] it was built from.  That is what allows
/// [`XplainService`](crate::service::XplainService) to cache views behind an
/// `Arc` and serve many concurrent queries against one encoding while the
/// log keeps mutating — a cached view is immutable and internally
/// consistent by construction.
///
/// Large logs are encoded **sharded** ([`ColumnarLog::build_sharded`]): the
/// row space is split into contiguous segments, each segment is encoded
/// independently (local dictionaries) on its own thread, and the segments
/// are merged by dictionary remapping ([`ColumnStore::merge_segments`]) into
/// a view bit-identical to the single-shot encode.
///
/// # Base and tail
///
/// A view is stored in two chunks: an immutable **base** behind an `Arc`
/// (everything encoded by the last full build or compaction) and a small
/// **tail** holding rows appended since.  [`ColumnarLog::with_appended`]
/// produces an updated view in O(tail): it encodes only the fresh records,
/// splices them onto the tail via [`ColumnStore::splice_tail`] (dictionaries
/// extend in place, base ids never move) and *shares* the base chunk with
/// its predecessor — the delta-maintenance path
/// [`XplainService`](crate::service::XplainService) refreshes cached views
/// through.  [`ColumnarLog::compacted`] folds an oversized tail back into a
/// fresh base without re-interning a single value.  Both are bit-identical
/// to a from-scratch build (proptested in `tests/properties.rs`).
#[derive(Debug, Clone)]
pub struct ColumnarLog {
    kind: ExecutionKind,
    /// The immutable base chunk, shared across delta generations.
    base: Arc<ViewBase>,
    /// Records appended since the base was built, in row order.
    tail_records: Vec<ExecutionRecord>,
    /// The tail's cells, encoded against the **global** dictionaries (the
    /// base dictionaries extended in place — base ids are a prefix).  The
    /// attributes here are the view's authoritative schema even when the
    /// tail has no rows.
    tail_store: ColumnStore,
    /// Per column: the original `Value` behind each interned nominal id
    /// (global ids, covering base and tail).
    originals: Vec<Vec<Value>>,
    /// Catalog kind per column.
    kinds: Vec<FeatureKind>,
    /// Record id → absolute row index, for tail rows only (consult before
    /// the base index so duplicate ids keep last-wins semantics).
    tail_index: FxHashMap<String, usize>,
}

/// The immutable base chunk of a [`ColumnarLog`]: the encoded columns,
/// the records they encode, and the id → row index over them.  Shared via
/// `Arc` so a delta refresh never copies a base cell.
#[derive(Debug)]
struct ViewBase {
    store: ColumnStore,
    records: Vec<ExecutionRecord>,
    row_index: FxHashMap<String, usize>,
}

impl PartialEq for ColumnarLog {
    fn eq(&self, other: &Self) -> bool {
        // Logical-content equality, independent of the base/tail split: a
        // flat build and a delta-maintained view with the same rows,
        // dictionaries and ids compare equal.  The row indexes are derived
        // from the records.
        if self.kind != other.kind
            || self.kinds != other.kinds
            || self.originals != other.originals
            || self.num_rows() != other.num_rows()
            || self.tail_store.attributes() != other.tail_store.attributes()
        {
            return false;
        }
        let columns = self.kinds.len();
        for row in 0..self.num_rows() {
            if self.record(row) != other.record(row) {
                return false;
            }
            for col in 0..columns {
                if self.cell(row, col) != other.cell(row, col) {
                    return false;
                }
            }
        }
        true
    }
}

/// One independently encoded shard: a local [`ColumnStore`] (own
/// dictionaries) plus the original `Value` behind each local nominal id.
/// Also the unit the snapshot store persists per shard and per kind
/// ([`crate::snapshot`]), which is why it is crate-visible.
#[derive(Debug, Clone)]
pub(crate) struct EncodedSegment {
    pub(crate) store: ColumnStore,
    pub(crate) originals: Vec<Vec<Value>>,
}

/// Encodes one contiguous run of records against the shared catalog.  Cells
/// are stored by *value* type: numeric values inline, everything else
/// interned by canonical text, so mixed-type features keep the exact
/// comparison semantics of the map-based path.
pub(crate) fn encode_segment(
    catalog: &FeatureCatalog,
    records: &[&ExecutionRecord],
) -> EncodedSegment {
    use std::fmt::Write as _;
    let mut attributes = Vec::with_capacity(catalog.len());
    let mut columns = Vec::with_capacity(catalog.len());
    let mut originals = Vec::with_capacity(catalog.len());
    // Canonical-text scratch buffer, reused across cells: interning must not
    // cost one heap allocation per record.
    let mut text = String::new();
    for def in catalog.defs() {
        let mut attribute = match def.kind {
            FeatureKind::Numeric => Attribute::numeric(def.name.clone()),
            FeatureKind::Nominal => Attribute::nominal(def.name.clone()),
        };
        let mut column = Vec::with_capacity(records.len());
        let mut column_originals: Vec<Value> = Vec::new();
        for record in records {
            let cell = match record.features.get(&def.name) {
                None | Some(Value::Null) => AttrValue::Missing,
                Some(Value::Num(v)) => AttrValue::Num(*v),
                Some(value) => {
                    text.clear();
                    write!(text, "{value}").expect("formatting into a String cannot fail");
                    let id = attribute.dictionary.intern(&text);
                    if id as usize == column_originals.len() {
                        column_originals.push(value.clone());
                    }
                    AttrValue::Nom(id)
                }
            };
            column.push(cell);
        }
        attributes.push(attribute);
        columns.push(column);
        originals.push(column_originals);
    }
    EncodedSegment {
        store: ColumnStore::from_columns(attributes, columns),
        originals,
    }
}

/// Merges independently encoded segments into the global store + originals.
/// The merged dictionaries assign ids in first-occurrence order over the
/// concatenated rows, so the result is bit-identical to a single-pass
/// encode; the original `Value` kept per global id is the one seen at that
/// first occurrence, exactly as the single-pass encode keeps it.
fn merge_segments(segments: Vec<EncodedSegment>) -> (ColumnStore, Vec<Vec<Value>>) {
    let mut segment_originals = Vec::with_capacity(segments.len());
    let mut stores = Vec::with_capacity(segments.len());
    for segment in segments {
        stores.push(segment.store);
        segment_originals.push(segment.originals);
    }
    let merged = ColumnStore::merge_segments(stores);
    let mut originals: Vec<Vec<Value>> = vec![Vec::new(); merged.store.num_columns()];
    for (locals, remap) in segment_originals.into_iter().zip(&merged.remaps) {
        for (col, column_locals) in locals.into_iter().enumerate() {
            // Local ids were assigned in intern order, so the global ids a
            // segment introduces appear in ascending order here: a value is
            // new globally exactly when its global id equals the current
            // originals length.
            for (local, value) in column_locals.into_iter().enumerate() {
                let global = remap[col][local] as usize;
                if global == originals[col].len() {
                    originals[col].push(value);
                }
            }
        }
    }
    (merged.store, originals)
}

/// A zero-row store carrying `store`'s schema and dictionaries — the empty
/// tail of a freshly built (or compacted) view.
fn empty_like(store: &ColumnStore) -> ColumnStore {
    ColumnStore::from_columns(
        store.attributes().to_vec(),
        vec![Vec::new(); store.num_columns()],
    )
}

impl ColumnarLog {
    /// Encodes the records of `kind` in one pass (equivalent to
    /// [`ColumnarLog::build_sharded`] with one shard).
    pub fn build(log: &ExecutionLog, kind: ExecutionKind) -> Self {
        ColumnarLog::build_sharded(log, kind, 1)
    }

    /// Encodes the records of `kind`, picking the shard count from the log
    /// size and the machine: single-shot below
    /// [`SHARDED_BUILD_THRESHOLD`] rows, one shard per available core at or
    /// above it.  The produced view is always bit-identical to
    /// [`ColumnarLog::build`].
    pub fn build_auto(log: &ExecutionLog, kind: ExecutionKind) -> Self {
        let rows = log.of_kind(kind).count();
        let shards = if rows >= SHARDED_BUILD_THRESHOLD {
            crate::shard::hardware_threads()
        } else {
            1
        };
        ColumnarLog::build_sharded(log, kind, shards)
    }

    /// Encodes the records of `kind` as `num_shards` contiguous segments
    /// fanned out over `std::thread::scope` threads, then merges the
    /// segments by dictionary remapping.  Bit-identical to
    /// [`ColumnarLog::build`] for every shard count (a shard count above the
    /// row count simply yields fewer, smaller segments).
    pub fn build_sharded(log: &ExecutionLog, kind: ExecutionKind, num_shards: usize) -> Self {
        let catalog = log.catalog(kind);
        let records: Vec<&ExecutionRecord> = log.of_kind(kind).collect();

        let (store, originals) = if num_shards <= 1 || records.len() <= 1 {
            let segment = encode_segment(catalog, &records);
            (segment.store, segment.originals)
        } else {
            merge_segments(crate::shard::map_chunks(&records, num_shards, |chunk| {
                encode_segment(catalog, chunk)
            }))
        };

        let kinds = catalog.defs().iter().map(|def| def.kind).collect();
        ColumnarLog::from_encoded(
            kind,
            records.into_iter().cloned().collect(),
            store,
            originals,
            kinds,
        )
    }

    /// Wraps a flat single-chunk encoding as a base with an empty tail.
    fn from_encoded(
        kind: ExecutionKind,
        records: Vec<ExecutionRecord>,
        store: ColumnStore,
        originals: Vec<Vec<Value>>,
        kinds: Vec<FeatureKind>,
    ) -> Self {
        let row_index = records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id.clone(), i))
            .collect();
        let tail_store = empty_like(&store);
        ColumnarLog {
            kind,
            base: Arc::new(ViewBase {
                store,
                records,
                row_index,
            }),
            tail_records: Vec::new(),
            tail_store,
            originals,
            kinds,
            tail_index: FxHashMap::default(),
        }
    }

    /// Returns a view extended by `fresh` records in **O(tail)**: only the
    /// fresh records are encoded (local dictionaries), spliced onto the
    /// current tail with the global dictionaries extended in place, and the
    /// base chunk is shared with `self` — not a base cell is copied.  The
    /// result is bit-identical to rebuilding the view over all rows from
    /// scratch.
    ///
    /// `catalog` must be the same catalog the view was built against: a
    /// batch that changes the catalog (new feature, kind promotion) changes
    /// the schema, and the caller must fall back to a full rebuild (the
    /// service gates this on [`ExecutionLog::rewrite_generation`]).
    pub fn with_appended(&self, catalog: &FeatureCatalog, fresh: &[&ExecutionRecord]) -> Self {
        debug_assert!(
            catalog.defs().iter().map(|def| def.name.as_str()).eq(self
                .tail_store
                .attributes()
                .iter()
                .map(|a| a.name.as_str())),
            "with_appended called with a catalog that does not match the view schema"
        );
        if fresh.is_empty() {
            return self.clone();
        }
        let segment = encode_segment(catalog, fresh);
        let spliced = self.tail_store.splice_tail(&segment.store);
        let mut originals = self.originals.clone();
        for (col, column_locals) in segment.originals.into_iter().enumerate() {
            // Local ids were interned in first-occurrence order, so the
            // global ids this batch introduces appear here in ascending
            // order: a value is new globally exactly when its global id
            // equals the current originals length.
            for (local, value) in column_locals.into_iter().enumerate() {
                let global = spliced.remaps[col][local] as usize;
                if global == originals[col].len() {
                    originals[col].push(value);
                }
            }
        }
        let base_rows = self.base.records.len();
        let mut tail_records = self.tail_records.clone();
        let mut tail_index = self.tail_index.clone();
        tail_records.reserve(fresh.len());
        for record in fresh {
            tail_index.insert(record.id.clone(), base_rows + tail_records.len());
            tail_records.push((*record).clone());
        }
        ColumnarLog {
            kind: self.kind,
            base: Arc::clone(&self.base),
            tail_records,
            tail_store: spliced.store,
            originals,
            kinds: self.kinds.clone(),
            tail_index,
        }
    }

    /// Folds the tail into a fresh base chunk ([`ColumnStore::concat_encoded`]
    /// — a pure cell concatenation, since base and tail already share one
    /// dictionary space) and returns the compacted view with an empty tail.
    /// A no-op clone when the tail is already empty.
    pub fn compacted(&self) -> Self {
        if self.tail_records.is_empty() {
            return self.clone();
        }
        let store = ColumnStore::concat_encoded(&self.base.store, &self.tail_store);
        let mut records = self.base.records.clone();
        records.extend(self.tail_records.iter().cloned());
        ColumnarLog::from_encoded(
            self.kind,
            records,
            store,
            self.originals.clone(),
            self.kinds.clone(),
        )
    }

    /// Assembles the view of `kind` from a loaded snapshot, without
    /// re-encoding a single cell: the per-shard binary column segments are
    /// pulled out of the snapshot across `std::thread::scope` threads
    /// ([`crate::shard::map_chunks`]) and stitched together by the same
    /// dictionary-remapping merge as [`ColumnarLog::build_sharded`] — so the
    /// result is **bit-identical** to encoding the snapshot's log from
    /// scratch, for any shard count the snapshot was written with
    /// (proptested in `tests/properties.rs`).
    ///
    /// This is the warm half of the cold-start story: a service rehydrated
    /// via [`XplainService::open_snapshot`](crate::service::XplainService::open_snapshot)
    /// serves its first query from these columns instead of re-parsing JSON
    /// and re-encoding the log.
    pub fn build_from_snapshot(snapshot: &crate::snapshot::Snapshot, kind: ExecutionKind) -> Self {
        let shards = snapshot.shards();
        // Segment clones are shallow now that columns are `Arc`-backed
        // (`ColumnData`): only dictionaries and originals are duplicated,
        // so no thread fan-out is worth its setup here.
        let segments: Vec<EncodedSegment> = shards
            .iter()
            .map(|shard| shard.segment(kind).clone())
            .collect();
        let records: Vec<ExecutionRecord> = shards
            .iter()
            .flat_map(|shard| shard.records().iter().filter(|r| r.kind == kind).cloned())
            .collect();
        ColumnarLog::assemble(kind, snapshot.catalog(kind), records, segments)
    }

    /// Stitches already-decoded segments and their records into a view:
    /// the same dictionary-remapping merge as [`ColumnarLog::build_sharded`]
    /// (bit-identical result), but with the column buffers adopted from the
    /// segments — a single segment's `Arc` columns are moved, not copied.
    /// This is the zero-copy tail of [`Snapshot::into_views`]
    /// (`crate::snapshot::Snapshot::into_views`).
    pub(crate) fn assemble(
        kind: ExecutionKind,
        catalog: &FeatureCatalog,
        records: Vec<ExecutionRecord>,
        segments: Vec<EncodedSegment>,
    ) -> Self {
        let (store, originals) = merge_segments(segments);
        let kinds = catalog.defs().iter().map(|def| def.kind).collect();
        ColumnarLog::from_encoded(kind, records, store, originals, kinds)
    }

    /// The execution kind this view encodes.
    pub fn kind(&self) -> ExecutionKind {
        self.kind
    }

    /// The encoded records (the view's own snapshot), in row order: base
    /// rows first, then the appended tail.
    pub fn records(&self) -> impl Iterator<Item = &ExecutionRecord> {
        self.base.records.iter().chain(&self.tail_records)
    }

    /// The record at `row`.
    #[inline]
    pub fn record(&self, row: usize) -> &ExecutionRecord {
        let base_rows = self.base.records.len();
        if row < base_rows {
            &self.base.records[row]
        } else {
            &self.tail_records[row - base_rows]
        }
    }

    /// Number of rows (records of the view's kind).
    ///
    /// Always counted over the records, never over the column stores: a
    /// view with an empty catalog has zero columns, and a zero-column
    /// [`ColumnStore`] reports zero rows regardless of the record count.
    pub fn num_rows(&self) -> usize {
        self.base.records.len() + self.tail_records.len()
    }

    /// Rows in the immutable base chunk.
    pub fn base_rows(&self) -> usize {
        self.base.records.len()
    }

    /// Rows in the appended tail (encoded since the last full build or
    /// compaction).
    pub fn tail_rows(&self) -> usize {
        self.tail_records.len()
    }

    /// Whether this view shares its base chunk with `other` (the delta
    /// refresh contract: no base cell was copied between them).
    pub fn shares_base_with(&self, other: &ColumnarLog) -> bool {
        Arc::ptr_eq(&self.base, &other.base)
    }

    /// Row index of the record with the given id.
    pub fn row_of(&self, id: &str) -> Option<usize> {
        // Tail first: an appended record with a duplicate id shadows the
        // base row, preserving the flat build's last-wins semantics.
        self.tail_index
            .get(id)
            .or_else(|| self.base.row_index.get(id))
            .copied()
    }

    /// Column index of a raw feature.
    pub fn column_of(&self, feature: &str) -> Option<usize> {
        self.tail_store.column_index(feature)
    }

    /// Catalog kind of column `col`.
    pub fn column_kind(&self, col: usize) -> FeatureKind {
        self.kinds[col]
    }

    /// The cell at (`row`, `col`).
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> AttrValue {
        let base_rows = self.base.records.len();
        if row < base_rows {
            self.base.store.value(row, col)
        } else {
            self.tail_store.value(row - base_rows, col)
        }
    }

    /// PXQL equality of two cells of the same column (`pxql_eq` semantics:
    /// numeric tolerance, exact nominal identity, missing never equal).
    #[inline]
    pub fn cells_equal(&self, a: AttrValue, b: AttrValue) -> bool {
        match (a, b) {
            (AttrValue::Num(x), AttrValue::Num(y)) => Value::Num(x).pxql_eq(&Value::Num(y)),
            (AttrValue::Nom(p), AttrValue::Nom(q)) => p == q,
            _ => false,
        }
    }

    /// PXQL equality of a cell against a constant, without allocating.
    #[inline]
    pub fn cell_eq_const(&self, col: usize, cell: AttrValue, constant: &Value) -> bool {
        match cell {
            AttrValue::Missing => false,
            AttrValue::Num(v) => Value::Num(v).pxql_eq(constant),
            AttrValue::Nom(id) => self.originals[col][id as usize].pxql_eq(constant),
        }
    }

    /// Decodes a cell back into the original [`Value`].
    pub fn decode(&self, col: usize, cell: AttrValue) -> Value {
        match cell {
            AttrValue::Missing => Value::Null,
            AttrValue::Num(v) => Value::Num(v),
            AttrValue::Nom(id) => self.originals[col][id as usize].clone(),
        }
    }

    /// Borrows the original value behind an interned id of column `col`.
    pub fn original(&self, col: usize, id: u32) -> &Value {
        &self.originals[col][id as usize]
    }
}

/// One pre-resolved atomic predicate over a pair of rows.
#[derive(Debug, Clone)]
enum CompiledAtom {
    /// The atom can never hold (unknown raw feature, inapplicable group, or
    /// a constant no derived value can equal).
    Never,
    /// `f_isSame op constant`.
    IsSame { col: usize, op: Op, constant: Value },
    /// `f_compare op constant`, pre-evaluated for the three outcomes
    /// (indexed LT, SIM, GT).
    Compare { col: usize, truth: [bool; 3] },
    /// `f_diff op constant`.
    Diff { col: usize, op: Op, constant: Value },
    /// Base feature `f op constant` (holds only when the pair agrees on f).
    Base { col: usize, op: Op, constant: Value },
}

impl CompiledAtom {
    fn compile(feature: &str, op: Op, constant: &Value, view: &ColumnarLog, sim: f64) -> Self {
        let (raw, group) = parse_pair_feature(feature);
        let Some(col) = view.column_of(raw) else {
            return CompiledAtom::Never;
        };
        match group {
            PairFeatureGroup::IsSame => CompiledAtom::IsSame {
                col,
                op,
                constant: constant.clone(),
            },
            PairFeatureGroup::Compare => {
                if view.column_kind(col) != FeatureKind::Numeric {
                    return CompiledAtom::Never;
                }
                // Pre-apply the operator to the three possible outcomes.
                let truth = COMPARE_VALUES.map(|outcome| op.apply(&Value::str(outcome), constant));
                let _ = sim;
                if truth.iter().all(|t| !t) {
                    CompiledAtom::Never
                } else {
                    CompiledAtom::Compare { col, truth }
                }
            }
            PairFeatureGroup::Diff => {
                if view.column_kind(col) != FeatureKind::Nominal {
                    return CompiledAtom::Never;
                }
                CompiledAtom::Diff {
                    col,
                    op,
                    constant: constant.clone(),
                }
            }
            PairFeatureGroup::Base => CompiledAtom::Base {
                col,
                op,
                constant: constant.clone(),
            },
        }
    }

    /// Evaluates the atom for the ordered pair of rows (`left`, `right`).
    #[inline]
    fn eval(&self, view: &ColumnarLog, left: usize, right: usize, sim: f64) -> bool {
        match self {
            CompiledAtom::Never => false,
            CompiledAtom::IsSame { col, op, constant } => {
                let l = view.cell(left, *col);
                let r = view.cell(right, *col);
                if l.is_missing() || r.is_missing() {
                    return false;
                }
                op.apply(&Value::Bool(view.cells_equal(l, r)), constant)
            }
            CompiledAtom::Compare { col, truth } => {
                match (view.cell(left, *col), view.cell(right, *col)) {
                    (AttrValue::Num(l), AttrValue::Num(r)) => truth[compare_index(l, r, sim)],
                    _ => false,
                }
            }
            CompiledAtom::Diff { col, op, constant } => {
                let l = view.cell(left, *col);
                let r = view.cell(right, *col);
                if l.is_missing() || r.is_missing() || view.cells_equal(l, r) {
                    return false;
                }
                // The derived value is the pair (l, r); only equality-family
                // operators can hold on pairs.
                let equal = match constant {
                    Value::Pair(a, b) => {
                        view.cell_eq_const(*col, l, a) && view.cell_eq_const(*col, r, b)
                    }
                    _ => false,
                };
                match op {
                    Op::Eq => equal,
                    Op::Ne => !equal,
                    _ => false,
                }
            }
            CompiledAtom::Base { col, op, constant } => {
                let l = view.cell(left, *col);
                let r = view.cell(right, *col);
                if l.is_missing() || r.is_missing() || !view.cells_equal(l, r) {
                    return false;
                }
                match l {
                    AttrValue::Num(v) => op.apply(&Value::Num(v), constant),
                    AttrValue::Nom(id) => op.apply(view.original(*col, id), constant),
                    AttrValue::Missing => false,
                }
            }
        }
    }
}

/// A conjunction of compiled atoms.
#[derive(Debug, Clone, Default)]
pub struct CompiledPredicate {
    atoms: Vec<CompiledAtom>,
}

impl CompiledPredicate {
    /// Compiles a predicate against a view.
    pub fn compile(predicate: &Predicate, view: &ColumnarLog, sim: f64) -> Self {
        CompiledPredicate {
            atoms: predicate
                .atoms()
                .iter()
                .map(|a| CompiledAtom::compile(&a.feature, a.op, &a.constant, view, sim))
                .collect(),
        }
    }

    /// Evaluates the conjunction for the ordered pair (`left`, `right`).
    #[inline]
    pub fn eval(&self, view: &ColumnarLog, left: usize, right: usize, sim: f64) -> bool {
        self.atoms
            .iter()
            .all(|atom| atom.eval(view, left, right, sim))
    }
}

/// A [`BoundQuery`] compiled against a [`ColumnarLog`]: classification of a
/// candidate pair costs a few comparisons and zero allocations.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    despite: CompiledPredicate,
    observed: CompiledPredicate,
    expected: CompiledPredicate,
    sim_threshold: f64,
}

impl CompiledQuery {
    /// Compiles the query's three clauses.
    pub fn compile(query: &BoundQuery, view: &ColumnarLog, sim_threshold: f64) -> Self {
        CompiledQuery {
            despite: CompiledPredicate::compile(&query.query.despite, view, sim_threshold),
            observed: CompiledPredicate::compile(&query.query.observed, view, sim_threshold),
            expected: CompiledPredicate::compile(&query.query.expected, view, sim_threshold),
            sim_threshold,
        }
    }

    /// Classifies the ordered pair (`left`, `right`), mirroring
    /// [`BoundQuery::classify`] (expected takes precedence over observed).
    #[inline]
    pub fn classify(&self, view: &ColumnarLog, left: usize, right: usize) -> PairLabel {
        let sim = self.sim_threshold;
        if !self.despite.eval(view, left, right, sim) {
            return PairLabel::Unrelated;
        }
        if self.expected.eval(view, left, right, sim) {
            return PairLabel::Expected;
        }
        if self.observed.eval(view, left, right, sim) {
            return PairLabel::Observed;
        }
        PairLabel::Unrelated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExplainConfig;
    use crate::pairs::compute_pair_features;
    use crate::record::ExecutionRecord;
    use pxql::parse_query;

    fn log() -> ExecutionLog {
        let mut log = ExecutionLog::new();
        for (id, input, script, duration) in [
            ("job_a", 32.0e9, "filter.pig", 1800.0),
            ("job_b", 1.0e9, "group.pig", 1750.0),
            ("job_c", 1.0e9, "filter.pig", 300.0),
            ("job_d", 8.0e9, "group.pig", 900.0),
        ] {
            log.push(
                ExecutionRecord::job(id)
                    .with_feature("inputsize", input)
                    .with_feature("pigscript", script)
                    .with_feature("duration", duration),
            );
        }
        // A record with a missing feature.
        log.push(ExecutionRecord::job("job_e").with_feature("duration", 100.0));
        log.rebuild_catalogs();
        log
    }

    #[test]
    fn view_encodes_and_decodes_losslessly() {
        let log = log();
        let view = ColumnarLog::build(&log, ExecutionKind::Job);
        assert_eq!(view.num_rows(), 5);
        assert_eq!(view.kind(), ExecutionKind::Job);
        let script_col = view.column_of("pigscript").unwrap();
        for (row, record) in view.records().enumerate() {
            let decoded = view.decode(script_col, view.cell(row, script_col));
            assert_eq!(decoded, record.feature("pigscript"));
        }
        assert_eq!(view.row_of("job_c"), Some(2));
        assert_eq!(view.row_of("job_zz"), None);
        assert_eq!(view.column_of("nope"), None);
    }

    #[test]
    fn compiled_classification_matches_the_map_based_path() {
        let log = log();
        let view = ColumnarLog::build(&log, ExecutionKind::Job);
        let config = ExplainConfig::default();
        let q = parse_query(
            "DESPITE inputsize_compare = GT\n\
             OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap();
        let query = BoundQuery::new(q, "job_a", "job_b");
        let compiled = CompiledQuery::compile(&query, &view, config.sim_threshold);
        let records: Vec<_> = view.records().collect();
        for i in 0..records.len() {
            for j in 0..records.len() {
                if i == j {
                    continue;
                }
                let expected =
                    query.classify_records(&log, records[i], records[j], config.sim_threshold);
                assert_eq!(
                    compiled.classify(&view, i, j),
                    expected,
                    "divergence on ({}, {})",
                    records[i].id,
                    records[j].id
                );
            }
        }
    }

    #[test]
    fn compiled_atoms_cover_all_groups() {
        let log = log();
        let view = ColumnarLog::build(&log, ExecutionKind::Job);
        let config = ExplainConfig::default();
        let catalog = log.job_catalog();
        // Every pair feature of every pair: the compiled atom must agree
        // with evaluation over the full pair-feature map.
        let records: Vec<_> = view.records().collect();
        for i in 0..records.len() {
            for j in 0..records.len() {
                if i == j {
                    continue;
                }
                let features =
                    compute_pair_features(catalog, records[i], records[j], config.sim_threshold);
                for (name, value) in &features {
                    let atom = pxql::Atom::new(name.clone(), Op::Eq, value.clone());
                    let by_map = atom.eval(&features);
                    let compiled = CompiledPredicate::compile(
                        &Predicate::from_atoms(vec![atom]),
                        &view,
                        config.sim_threshold,
                    );
                    assert_eq!(
                        compiled.eval(&view, i, j, config.sim_threshold),
                        by_map,
                        "feature {name} = {value} on ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_features_never_hold() {
        let log = log();
        let view = ColumnarLog::build(&log, ExecutionKind::Job);
        let predicate = Predicate::from_atoms(vec![pxql::Atom::eq("ghost_compare", "GT")]);
        let compiled = CompiledPredicate::compile(&predicate, &view, 0.1);
        assert!(!compiled.eval(&view, 0, 1, 0.1));
    }

    #[test]
    fn sharded_build_is_bit_identical_for_every_shard_count() {
        let log = log();
        let single = ColumnarLog::build(&log, ExecutionKind::Job);
        for shards in [1, 2, 3, 4, 5, 64] {
            let sharded = ColumnarLog::build_sharded(&log, ExecutionKind::Job, shards);
            assert_eq!(sharded, single, "{shards} shards diverge");
            assert_eq!(sharded.row_of("job_c"), single.row_of("job_c"));
        }
        assert_eq!(ColumnarLog::build_auto(&log, ExecutionKind::Job), single);
    }

    #[test]
    fn sharded_build_handles_empty_and_tiny_logs() {
        let empty = ExecutionLog::new();
        let view = ColumnarLog::build_sharded(&empty, ExecutionKind::Job, 8);
        assert_eq!(view.num_rows(), 0);

        let mut one = ExecutionLog::new();
        one.push(ExecutionRecord::job("solo").with_feature("duration", 1.0));
        one.rebuild_catalogs();
        let sharded = ColumnarLog::build_sharded(&one, ExecutionKind::Job, 8);
        assert_eq!(sharded, ColumnarLog::build(&one, ExecutionKind::Job));
    }

    #[test]
    fn with_appended_is_bit_identical_and_shares_the_base() {
        let mut log = log();
        let view = ColumnarLog::build(&log, ExecutionKind::Job);
        assert_eq!(view.tail_rows(), 0);

        // Append a batch mixing known and brand-new nominal values.
        let batch = vec![
            ExecutionRecord::job("job_f")
                .with_feature("inputsize", 2.0e9)
                .with_feature("pigscript", "filter.pig")
                .with_feature("duration", 400.0),
            ExecutionRecord::job("job_g")
                .with_feature("inputsize", 4.0e9)
                .with_feature("pigscript", "join.pig")
                .with_feature("duration", 999.0),
        ];
        let fresh: Vec<&ExecutionRecord> = batch.iter().collect();
        let delta = view.with_appended(log.catalog(ExecutionKind::Job), &fresh);
        assert!(delta.shares_base_with(&view));
        assert_eq!(delta.base_rows(), view.num_rows());
        assert_eq!(delta.tail_rows(), 2);
        assert_eq!(delta.row_of("job_g"), Some(6));

        for record in batch {
            log.append(vec![record]);
        }
        let full = ColumnarLog::build(&log, ExecutionKind::Job);
        assert_eq!(delta, full, "delta view diverges from a full rebuild");

        // A second delta on top of the first still shares the original base.
        let more = vec![ExecutionRecord::job("job_h").with_feature("pigscript", "join.pig")];
        let fresh: Vec<&ExecutionRecord> = more.iter().collect();
        let stacked = delta.with_appended(log.catalog(ExecutionKind::Job), &fresh);
        assert!(stacked.shares_base_with(&view));
        assert_eq!(stacked.tail_rows(), 3);
        log.append(more);
        assert_eq!(stacked, ColumnarLog::build(&log, ExecutionKind::Job));
    }

    #[test]
    fn compacted_folds_the_tail_without_changing_content() {
        let log = log();
        let view = ColumnarLog::build(&log, ExecutionKind::Job);
        let batch = [ExecutionRecord::job("job_f")
            .with_feature("pigscript", "join.pig")
            .with_feature("duration", 5.0)];
        let fresh: Vec<&ExecutionRecord> = batch.iter().collect();
        let delta = view.with_appended(log.catalog(ExecutionKind::Job), &fresh);
        let compacted = delta.compacted();
        assert_eq!(compacted.tail_rows(), 0);
        assert_eq!(compacted.base_rows(), delta.num_rows());
        assert!(!compacted.shares_base_with(&delta));
        assert_eq!(compacted, delta);
        // Compacting an empty tail is the identity (base shared, no copy).
        assert!(view.compacted().shares_base_with(&view));
        assert_eq!(view.compacted(), view);
    }

    #[test]
    fn appended_duplicate_ids_shadow_base_rows() {
        let log = log();
        let view = ColumnarLog::build(&log, ExecutionKind::Job);
        assert_eq!(view.row_of("job_c"), Some(2));
        let batch = [ExecutionRecord::job("job_c").with_feature("duration", 123.0)];
        let fresh: Vec<&ExecutionRecord> = batch.iter().collect();
        let delta = view.with_appended(log.catalog(ExecutionKind::Job), &fresh);
        assert_eq!(delta.row_of("job_c"), Some(5));
    }

    /// Shards whose nominal dictionaries are disjoint (every script name is
    /// unique to its shard) still merge into the single-shot id assignment.
    #[test]
    fn sharded_build_merges_disjoint_dictionaries() {
        let mut log = ExecutionLog::new();
        for i in 0..20 {
            log.push(
                ExecutionRecord::job(format!("job_{i}"))
                    .with_feature("pigscript", format!("script_{i}.pig"))
                    .with_feature("duration", 10.0 * i as f64),
            );
        }
        log.rebuild_catalogs();
        let single = ColumnarLog::build(&log, ExecutionKind::Job);
        for shards in [2, 4, 7, 20] {
            assert_eq!(
                ColumnarLog::build_sharded(&log, ExecutionKind::Job, shards),
                single
            );
        }
    }
}
