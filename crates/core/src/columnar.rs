//! Columnar encoded view of an execution log and query compilation.
//!
//! The training pipeline classifies O(n²) candidate pairs of executions.
//! The original implementation rebuilt a `BTreeMap<String, Value>` of pair
//! features — with `format!`-built keys — for every single pair.  This
//! module replaces that hot path with a **columnar, zero-re-encoding**
//! design:
//!
//! * [`ColumnarLog`] encodes the per-kind records of an [`ExecutionLog`]
//!   once into per-feature columns ([`mlcore::ColumnStore`]): numeric cells
//!   are stored inline, nominal cells are interned against a per-column
//!   dictionary keyed by the value's canonical PXQL text, and the original
//!   [`Value`] behind every interned id is retained for lossless decoding.
//! * [`CompiledQuery`] resolves a [`BoundQuery`]'s three clauses against the
//!   columns once — feature names are parsed into `(column index, pair
//!   feature group)` pairs and constants are pre-analysed — so classifying
//!   a candidate pair is a handful of integer/float comparisons with **no
//!   allocation and no string hashing**.
//!
//! Semantics match the map-based path (`compute_selected_pair_features` +
//! `BoundQuery::classify`) exactly, with one documented exception: two raw
//! nominal values that differ textually but compare equal under PXQL's
//! cross-type rules (e.g. `Bool(true)` vs the string `"true"`) intern to
//! different ids and therefore compare unequal here.  Canonical log
//! producers never mix value types within a feature, and `T`/`F` strings —
//! the forms the paper's queries use — share their canonical text with the
//! booleans they denote.

use crate::features::FeatureKind;
use crate::pairs::{compare_index, parse_pair_feature, PairFeatureGroup, COMPARE_VALUES};
use crate::query::{BoundQuery, PairLabel};
use crate::record::{ExecutionKind, ExecutionLog, ExecutionRecord};
use mlcore::{AttrValue, Attribute, ColumnStore};
use pxql::{Op, Predicate, Value};
use std::collections::HashMap;

/// The columnar encoded view of the records of one execution kind.
///
/// The view is **self-contained**: it owns a snapshot of the records it
/// encodes, so it can outlive (and be shared independently of) the
/// [`ExecutionLog`] it was built from.  That is what allows
/// [`XplainService`](crate::service::XplainService) to cache views behind an
/// `Arc` and serve many concurrent queries against one encoding while the
/// log keeps mutating — a cached view is immutable and internally
/// consistent by construction.
#[derive(Debug, Clone)]
pub struct ColumnarLog {
    kind: ExecutionKind,
    records: Vec<ExecutionRecord>,
    store: ColumnStore,
    /// Per column: the original `Value` behind each interned nominal id.
    originals: Vec<Vec<Value>>,
    /// Catalog kind per column.
    kinds: Vec<FeatureKind>,
    /// Record id → row index.
    row_index: HashMap<String, usize>,
}

impl ColumnarLog {
    /// Encodes the records of `kind` once.  Cells are stored by *value*
    /// type: numeric values inline, everything else interned by canonical
    /// text, so mixed-type features keep the exact comparison semantics of
    /// the map-based path.
    pub fn build(log: &ExecutionLog, kind: ExecutionKind) -> Self {
        let catalog = log.catalog(kind);
        let records: Vec<&ExecutionRecord> = log.of_kind(kind).collect();
        let mut attributes = Vec::with_capacity(catalog.len());
        let mut columns = Vec::with_capacity(catalog.len());
        let mut originals = Vec::with_capacity(catalog.len());
        let mut kinds = Vec::with_capacity(catalog.len());

        for def in catalog.defs() {
            let mut attribute = match def.kind {
                FeatureKind::Numeric => Attribute::numeric(def.name.clone()),
                FeatureKind::Nominal => Attribute::nominal(def.name.clone()),
            };
            let mut column = Vec::with_capacity(records.len());
            let mut column_originals: Vec<Value> = Vec::new();
            for record in &records {
                let cell = match record.features.get(&def.name) {
                    None | Some(Value::Null) => AttrValue::Missing,
                    Some(Value::Num(v)) => AttrValue::Num(*v),
                    Some(value) => {
                        let id = attribute.dictionary.intern(&value.to_string());
                        if id as usize == column_originals.len() {
                            column_originals.push(value.clone());
                        }
                        AttrValue::Nom(id)
                    }
                };
                column.push(cell);
            }
            attributes.push(attribute);
            columns.push(column);
            originals.push(column_originals);
            kinds.push(def.kind);
        }

        let row_index = records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.id.clone(), i))
            .collect();
        ColumnarLog {
            kind,
            records: records.into_iter().cloned().collect(),
            store: ColumnStore::from_columns(attributes, columns),
            originals,
            kinds,
            row_index,
        }
    }

    /// The execution kind this view encodes.
    pub fn kind(&self) -> ExecutionKind {
        self.kind
    }

    /// The encoded records (the view's own snapshot), in row order.
    pub fn records(&self) -> &[ExecutionRecord] {
        &self.records
    }

    /// Number of rows (records of the view's kind).
    pub fn num_rows(&self) -> usize {
        self.records.len()
    }

    /// The underlying column store.
    pub fn store(&self) -> &ColumnStore {
        &self.store
    }

    /// Row index of the record with the given id.
    pub fn row_of(&self, id: &str) -> Option<usize> {
        self.row_index.get(id).copied()
    }

    /// Column index of a raw feature.
    pub fn column_of(&self, feature: &str) -> Option<usize> {
        self.store.column_index(feature)
    }

    /// Catalog kind of column `col`.
    pub fn column_kind(&self, col: usize) -> FeatureKind {
        self.kinds[col]
    }

    /// The cell at (`row`, `col`).
    #[inline]
    pub fn cell(&self, row: usize, col: usize) -> AttrValue {
        self.store.value(row, col)
    }

    /// PXQL equality of two cells of the same column (`pxql_eq` semantics:
    /// numeric tolerance, exact nominal identity, missing never equal).
    #[inline]
    pub fn cells_equal(&self, a: AttrValue, b: AttrValue) -> bool {
        match (a, b) {
            (AttrValue::Num(x), AttrValue::Num(y)) => Value::Num(x).pxql_eq(&Value::Num(y)),
            (AttrValue::Nom(p), AttrValue::Nom(q)) => p == q,
            _ => false,
        }
    }

    /// PXQL equality of a cell against a constant, without allocating.
    #[inline]
    pub fn cell_eq_const(&self, col: usize, cell: AttrValue, constant: &Value) -> bool {
        match cell {
            AttrValue::Missing => false,
            AttrValue::Num(v) => Value::Num(v).pxql_eq(constant),
            AttrValue::Nom(id) => self.originals[col][id as usize].pxql_eq(constant),
        }
    }

    /// Decodes a cell back into the original [`Value`].
    pub fn decode(&self, col: usize, cell: AttrValue) -> Value {
        match cell {
            AttrValue::Missing => Value::Null,
            AttrValue::Num(v) => Value::Num(v),
            AttrValue::Nom(id) => self.originals[col][id as usize].clone(),
        }
    }

    /// Borrows the original value behind an interned id of column `col`.
    pub fn original(&self, col: usize, id: u32) -> &Value {
        &self.originals[col][id as usize]
    }
}

/// One pre-resolved atomic predicate over a pair of rows.
#[derive(Debug, Clone)]
enum CompiledAtom {
    /// The atom can never hold (unknown raw feature, inapplicable group, or
    /// a constant no derived value can equal).
    Never,
    /// `f_isSame op constant`.
    IsSame { col: usize, op: Op, constant: Value },
    /// `f_compare op constant`, pre-evaluated for the three outcomes
    /// (indexed LT, SIM, GT).
    Compare { col: usize, truth: [bool; 3] },
    /// `f_diff op constant`.
    Diff { col: usize, op: Op, constant: Value },
    /// Base feature `f op constant` (holds only when the pair agrees on f).
    Base { col: usize, op: Op, constant: Value },
}

impl CompiledAtom {
    fn compile(feature: &str, op: Op, constant: &Value, view: &ColumnarLog, sim: f64) -> Self {
        let (raw, group) = parse_pair_feature(feature);
        let Some(col) = view.column_of(raw) else {
            return CompiledAtom::Never;
        };
        match group {
            PairFeatureGroup::IsSame => CompiledAtom::IsSame {
                col,
                op,
                constant: constant.clone(),
            },
            PairFeatureGroup::Compare => {
                if view.column_kind(col) != FeatureKind::Numeric {
                    return CompiledAtom::Never;
                }
                // Pre-apply the operator to the three possible outcomes.
                let truth = COMPARE_VALUES.map(|outcome| op.apply(&Value::str(outcome), constant));
                let _ = sim;
                if truth.iter().all(|t| !t) {
                    CompiledAtom::Never
                } else {
                    CompiledAtom::Compare { col, truth }
                }
            }
            PairFeatureGroup::Diff => {
                if view.column_kind(col) != FeatureKind::Nominal {
                    return CompiledAtom::Never;
                }
                CompiledAtom::Diff {
                    col,
                    op,
                    constant: constant.clone(),
                }
            }
            PairFeatureGroup::Base => CompiledAtom::Base {
                col,
                op,
                constant: constant.clone(),
            },
        }
    }

    /// Evaluates the atom for the ordered pair of rows (`left`, `right`).
    #[inline]
    fn eval(&self, view: &ColumnarLog, left: usize, right: usize, sim: f64) -> bool {
        match self {
            CompiledAtom::Never => false,
            CompiledAtom::IsSame { col, op, constant } => {
                let l = view.cell(left, *col);
                let r = view.cell(right, *col);
                if l.is_missing() || r.is_missing() {
                    return false;
                }
                op.apply(&Value::Bool(view.cells_equal(l, r)), constant)
            }
            CompiledAtom::Compare { col, truth } => {
                match (view.cell(left, *col), view.cell(right, *col)) {
                    (AttrValue::Num(l), AttrValue::Num(r)) => truth[compare_index(l, r, sim)],
                    _ => false,
                }
            }
            CompiledAtom::Diff { col, op, constant } => {
                let l = view.cell(left, *col);
                let r = view.cell(right, *col);
                if l.is_missing() || r.is_missing() || view.cells_equal(l, r) {
                    return false;
                }
                // The derived value is the pair (l, r); only equality-family
                // operators can hold on pairs.
                let equal = match constant {
                    Value::Pair(a, b) => {
                        view.cell_eq_const(*col, l, a) && view.cell_eq_const(*col, r, b)
                    }
                    _ => false,
                };
                match op {
                    Op::Eq => equal,
                    Op::Ne => !equal,
                    _ => false,
                }
            }
            CompiledAtom::Base { col, op, constant } => {
                let l = view.cell(left, *col);
                let r = view.cell(right, *col);
                if l.is_missing() || r.is_missing() || !view.cells_equal(l, r) {
                    return false;
                }
                match l {
                    AttrValue::Num(v) => op.apply(&Value::Num(v), constant),
                    AttrValue::Nom(id) => op.apply(view.original(*col, id), constant),
                    AttrValue::Missing => false,
                }
            }
        }
    }
}

/// A conjunction of compiled atoms.
#[derive(Debug, Clone, Default)]
pub struct CompiledPredicate {
    atoms: Vec<CompiledAtom>,
}

impl CompiledPredicate {
    /// Compiles a predicate against a view.
    pub fn compile(predicate: &Predicate, view: &ColumnarLog, sim: f64) -> Self {
        CompiledPredicate {
            atoms: predicate
                .atoms()
                .iter()
                .map(|a| CompiledAtom::compile(&a.feature, a.op, &a.constant, view, sim))
                .collect(),
        }
    }

    /// Evaluates the conjunction for the ordered pair (`left`, `right`).
    #[inline]
    pub fn eval(&self, view: &ColumnarLog, left: usize, right: usize, sim: f64) -> bool {
        self.atoms
            .iter()
            .all(|atom| atom.eval(view, left, right, sim))
    }
}

/// A [`BoundQuery`] compiled against a [`ColumnarLog`]: classification of a
/// candidate pair costs a few comparisons and zero allocations.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    despite: CompiledPredicate,
    observed: CompiledPredicate,
    expected: CompiledPredicate,
    sim_threshold: f64,
}

impl CompiledQuery {
    /// Compiles the query's three clauses.
    pub fn compile(query: &BoundQuery, view: &ColumnarLog, sim_threshold: f64) -> Self {
        CompiledQuery {
            despite: CompiledPredicate::compile(&query.query.despite, view, sim_threshold),
            observed: CompiledPredicate::compile(&query.query.observed, view, sim_threshold),
            expected: CompiledPredicate::compile(&query.query.expected, view, sim_threshold),
            sim_threshold,
        }
    }

    /// Classifies the ordered pair (`left`, `right`), mirroring
    /// [`BoundQuery::classify`] (expected takes precedence over observed).
    #[inline]
    pub fn classify(&self, view: &ColumnarLog, left: usize, right: usize) -> PairLabel {
        let sim = self.sim_threshold;
        if !self.despite.eval(view, left, right, sim) {
            return PairLabel::Unrelated;
        }
        if self.expected.eval(view, left, right, sim) {
            return PairLabel::Expected;
        }
        if self.observed.eval(view, left, right, sim) {
            return PairLabel::Observed;
        }
        PairLabel::Unrelated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExplainConfig;
    use crate::pairs::compute_pair_features;
    use crate::record::ExecutionRecord;
    use pxql::parse_query;

    fn log() -> ExecutionLog {
        let mut log = ExecutionLog::new();
        for (id, input, script, duration) in [
            ("job_a", 32.0e9, "filter.pig", 1800.0),
            ("job_b", 1.0e9, "group.pig", 1750.0),
            ("job_c", 1.0e9, "filter.pig", 300.0),
            ("job_d", 8.0e9, "group.pig", 900.0),
        ] {
            log.push(
                ExecutionRecord::job(id)
                    .with_feature("inputsize", input)
                    .with_feature("pigscript", script)
                    .with_feature("duration", duration),
            );
        }
        // A record with a missing feature.
        log.push(ExecutionRecord::job("job_e").with_feature("duration", 100.0));
        log.rebuild_catalogs();
        log
    }

    #[test]
    fn view_encodes_and_decodes_losslessly() {
        let log = log();
        let view = ColumnarLog::build(&log, ExecutionKind::Job);
        assert_eq!(view.num_rows(), 5);
        assert_eq!(view.kind(), ExecutionKind::Job);
        let script_col = view.column_of("pigscript").unwrap();
        for (row, record) in view.records().iter().enumerate() {
            let decoded = view.decode(script_col, view.cell(row, script_col));
            assert_eq!(decoded, record.feature("pigscript"));
        }
        assert_eq!(view.row_of("job_c"), Some(2));
        assert_eq!(view.row_of("job_zz"), None);
        assert_eq!(view.column_of("nope"), None);
    }

    #[test]
    fn compiled_classification_matches_the_map_based_path() {
        let log = log();
        let view = ColumnarLog::build(&log, ExecutionKind::Job);
        let config = ExplainConfig::default();
        let q = parse_query(
            "DESPITE inputsize_compare = GT\n\
             OBSERVED duration_compare = SIM\n\
             EXPECTED duration_compare = GT",
        )
        .unwrap();
        let query = BoundQuery::new(q, "job_a", "job_b");
        let compiled = CompiledQuery::compile(&query, &view, config.sim_threshold);
        let records = view.records();
        for i in 0..records.len() {
            for j in 0..records.len() {
                if i == j {
                    continue;
                }
                let expected =
                    query.classify_records(&log, &records[i], &records[j], config.sim_threshold);
                assert_eq!(
                    compiled.classify(&view, i, j),
                    expected,
                    "divergence on ({}, {})",
                    records[i].id,
                    records[j].id
                );
            }
        }
    }

    #[test]
    fn compiled_atoms_cover_all_groups() {
        let log = log();
        let view = ColumnarLog::build(&log, ExecutionKind::Job);
        let config = ExplainConfig::default();
        let catalog = log.job_catalog();
        // Every pair feature of every pair: the compiled atom must agree
        // with evaluation over the full pair-feature map.
        let records = view.records();
        for i in 0..records.len() {
            for j in 0..records.len() {
                if i == j {
                    continue;
                }
                let features =
                    compute_pair_features(catalog, &records[i], &records[j], config.sim_threshold);
                for (name, value) in &features {
                    let atom = pxql::Atom::new(name.clone(), Op::Eq, value.clone());
                    let by_map = atom.eval(&features);
                    let compiled = CompiledPredicate::compile(
                        &Predicate::from_atoms(vec![atom]),
                        &view,
                        config.sim_threshold,
                    );
                    assert_eq!(
                        compiled.eval(&view, i, j, config.sim_threshold),
                        by_map,
                        "feature {name} = {value} on ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_features_never_hold() {
        let log = log();
        let view = ColumnarLog::build(&log, ExecutionKind::Job);
        let predicate = Predicate::from_atoms(vec![pxql::Atom::eq("ghost_compare", "GT")]);
        let compiled = CompiledPredicate::compile(&predicate, &view, 0.1);
        assert!(!compiled.eval(&view, 0, 1, 0.1));
    }
}
