//! A discrete-event MapReduce cluster simulator.
//!
//! The PerfXplain paper evaluates on a log of Pig jobs executed on Amazon EC2
//! clusters of 1–16 virtual machines, with Hadoop's per-task counters and
//! Ganglia system metrics collected for every execution.  That substrate is
//! not available here, so this crate simulates it: it models
//!
//! * a cluster of identical instances, each with a fixed number of cores and
//!   of map/reduce slots (two of each, like the `m1.large` instances used in
//!   the paper),
//! * block-based input splitting (`dfs.block.size`) that determines the
//!   number of map tasks,
//! * FIFO wave scheduling of tasks onto free slots,
//! * a per-phase cost model (read, map, spill/sort, shuffle, merge, reduce,
//!   write) whose rates degrade under per-instance contention — this is the
//!   mechanism behind the paper's "the last task was faster because the
//!   machine load was lighter" explanation,
//! * per-task Hadoop-style counters, and
//! * a Ganglia-style monitor that samples CPU, load, process, network and
//!   memory metrics for every instance every five simulated seconds.
//!
//! The output of a simulated job is a [`trace::JobTrace`]: the raw material
//! that `perfxplain-logs` renders into Hadoop job-history files and Ganglia
//! dumps, and from which the PerfXplain execution log is collected.
//!
//! The simulator is deterministic for a fixed seed.

pub mod cluster;
pub mod config;
pub mod cost;
pub mod ganglia;
pub mod instance;
pub mod noise;
pub mod pig;
pub mod scheduler;
pub mod trace;

pub use cluster::Cluster;
pub use config::{ClusterSpec, JobSpec};
pub use cost::CostModel;
pub use ganglia::{GangliaSample, METRIC_NAMES};
pub use pig::PigScript;
pub use trace::{JobTrace, TaskKind, TaskTrace};

/// Mebibytes → bytes.
pub const MB: u64 = 1024 * 1024;
/// Gibibytes → bytes.
pub const GB: u64 = 1024 * 1024 * 1024;
