//! A Ganglia-style cluster monitor.
//!
//! The paper's setup runs Ganglia on every instance and samples system
//! metrics every five seconds; PerfXplain later averages each metric over a
//! task's execution window (and over all of a job's tasks) to obtain the
//! `avg_cpu_user`, `avg_load_five`, `avg_bytes_in`, … features that show up
//! in its explanations.
//!
//! The simulator reproduces this: given the set of task intervals placed on
//! each instance it emits one sample per instance per five simulated
//! seconds, with CPU utilisation, UNIX-style exponentially-smoothed load
//! averages, process counts, network traffic and memory metrics derived from
//! the number of concurrently running tasks (plus measurement noise).

use crate::config::ClusterSpec;
use crate::instance::Instance;
use crate::noise::NoiseModel;
use crate::trace::TaskKind;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sampling period in simulated seconds (Ganglia's default in the paper).
pub const SAMPLE_INTERVAL_SECS: f64 = 5.0;

/// The metrics every sample carries, in emission order.
pub const METRIC_NAMES: &[&str] = &[
    "boottime",
    "cpu_num",
    "cpu_speed",
    "cpu_user",
    "cpu_system",
    "cpu_idle",
    "cpu_wio",
    "load_one",
    "load_five",
    "load_fifteen",
    "proc_run",
    "proc_total",
    "mem_free",
    "mem_cached",
    "mem_buffers",
    "swap_free",
    "bytes_in",
    "bytes_out",
    "pkts_in",
    "pkts_out",
    "disk_free",
];

/// One monitoring sample of one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GangliaSample {
    /// Index of the instance within its cluster.
    pub instance: usize,
    /// Hostname of the instance.
    pub hostname: String,
    /// Sample timestamp (simulated seconds).
    pub time: f64,
    /// Metric name → value.
    pub metrics: BTreeMap<String, f64>,
}

impl GangliaSample {
    /// Convenience accessor (0.0 when the metric is absent).
    pub fn metric(&self, name: &str) -> f64 {
        self.metrics.get(name).copied().unwrap_or(0.0)
    }
}

/// The load one task puts on its instance while it runs; input to the
/// sampler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskLoad {
    /// Instance the task runs on.
    pub instance: usize,
    /// Start time.
    pub start: f64,
    /// Finish time.
    pub finish: f64,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Network bytes per second flowing *into* the instance because of this
    /// task (shuffle for reduce tasks, remote HDFS reads for map tasks).
    pub net_in_bytes_per_sec: f64,
    /// Network bytes per second flowing *out* of the instance because of
    /// this task (serving map output to reducers, HDFS replication).
    pub net_out_bytes_per_sec: f64,
}

impl TaskLoad {
    fn running_at(&self, t: f64) -> bool {
        self.start <= t && t < self.finish
    }
}

/// Exponential smoothing factor for a UNIX load average with time constant
/// `tau` seconds sampled every `dt` seconds.
fn ewma_alpha(dt: f64, tau: f64) -> f64 {
    1.0 - (-dt / tau).exp()
}

/// Samples every instance of the cluster every five seconds over
/// `[window_start, window_end]`.
pub fn sample_cluster(
    spec: &ClusterSpec,
    instances: &[Instance],
    loads: &[TaskLoad],
    window_start: f64,
    window_end: f64,
    noise: &NoiseModel,
    rng: &mut StdRng,
) -> Vec<GangliaSample> {
    let mut samples = Vec::new();
    if window_end <= window_start || instances.is_empty() {
        return samples;
    }

    let cores = spec.cores_per_instance.max(1) as f64;
    // Idle background load every instance carries (daemons, the tasktracker).
    let background_procs = 85.0;
    let alpha_one = ewma_alpha(SAMPLE_INTERVAL_SECS, 60.0);
    let alpha_five = ewma_alpha(SAMPLE_INTERVAL_SECS, 300.0);
    let alpha_fifteen = ewma_alpha(SAMPLE_INTERVAL_SECS, 900.0);

    // Per-instance smoothed load state.
    let mut load_one = vec![0.05; instances.len()];
    let mut load_five = vec![0.05; instances.len()];
    let mut load_fifteen = vec![0.05; instances.len()];

    let mut t = window_start;
    while t <= window_end + 1e-9 {
        for (idx, instance) in instances.iter().enumerate() {
            let running: Vec<&TaskLoad> = loads
                .iter()
                .filter(|l| l.instance == idx && l.running_at(t))
                .collect();
            let n_running = running.len() as f64;

            // Instantaneous runnable-process count feeding the load average.
            let instantaneous = n_running + 0.05 + rng.random_range(0.0..0.05);
            load_one[idx] += alpha_one * (instantaneous - load_one[idx]);
            load_five[idx] += alpha_five * (instantaneous - load_five[idx]);
            load_fifteen[idx] += alpha_fifteen * (instantaneous - load_fifteen[idx]);

            let busy_fraction = (n_running / cores).min(2.0);
            let cpu_user = (busy_fraction * 44.0).min(93.0) * noise.factor(rng).min(1.2);
            let cpu_system = 2.0 + n_running * 1.5 + rng.random_range(0.0..1.0);
            let cpu_wio = (n_running * 2.5).min(12.0) + rng.random_range(0.0..0.5);
            let cpu_idle = (100.0 - cpu_user - cpu_system - cpu_wio).max(0.0);

            let net_in: f64 = running.iter().map(|l| l.net_in_bytes_per_sec).sum::<f64>()
                * noise.factor(rng)
                + rng.random_range(500.0..2_000.0);
            let net_out: f64 = running.iter().map(|l| l.net_out_bytes_per_sec).sum::<f64>()
                * noise.factor(rng)
                + rng.random_range(500.0..2_000.0);

            let task_mem = 0.11 * spec.memory_bytes as f64;
            let mem_used = 0.22 * spec.memory_bytes as f64 + n_running * task_mem;
            let mem_free =
                (spec.memory_bytes as f64 - mem_used).max(0.05 * spec.memory_bytes as f64);

            let mut metrics = BTreeMap::new();
            metrics.insert("boottime".to_string(), instance.boot_time);
            metrics.insert("cpu_num".to_string(), cores);
            metrics.insert("cpu_speed".to_string(), 2_266.0 * spec.cpu_speed);
            metrics.insert("cpu_user".to_string(), cpu_user);
            metrics.insert("cpu_system".to_string(), cpu_system);
            metrics.insert("cpu_idle".to_string(), cpu_idle);
            metrics.insert("cpu_wio".to_string(), cpu_wio);
            metrics.insert("load_one".to_string(), load_one[idx]);
            metrics.insert("load_five".to_string(), load_five[idx]);
            metrics.insert("load_fifteen".to_string(), load_fifteen[idx]);
            metrics.insert(
                "proc_run".to_string(),
                n_running + rng.random_range(0.0..1.0f64).round(),
            );
            metrics.insert(
                "proc_total".to_string(),
                background_procs + n_running * 3.0 + rng.random_range(0.0..4.0f64).round(),
            );
            metrics.insert("mem_free".to_string(), mem_free);
            metrics.insert(
                "mem_cached".to_string(),
                0.15 * spec.memory_bytes as f64 * noise.factor(rng),
            );
            metrics.insert(
                "mem_buffers".to_string(),
                0.03 * spec.memory_bytes as f64 * noise.factor(rng),
            );
            metrics.insert("swap_free".to_string(), spec.memory_bytes as f64 / 2.0);
            metrics.insert("bytes_in".to_string(), net_in);
            metrics.insert("bytes_out".to_string(), net_out);
            metrics.insert("pkts_in".to_string(), net_in / 1_400.0);
            metrics.insert("pkts_out".to_string(), net_out / 1_400.0);
            metrics.insert(
                "disk_free".to_string(),
                380.0e9 - n_running * 1.0e9 + rng.random_range(0.0..1.0e8),
            );

            samples.push(GangliaSample {
                instance: idx,
                hostname: instance.hostname.clone(),
                time: t,
                metrics,
            });
        }
        t += SAMPLE_INTERVAL_SECS;
    }
    samples
}

/// Averages a metric over the samples of one instance within a time window
/// (inclusive of both ends).  Returns `None` when no sample falls inside.
pub fn average_metric(
    samples: &[GangliaSample],
    instance: usize,
    metric: &str,
    start: f64,
    end: f64,
) -> Option<f64> {
    let values: Vec<f64> = samples
        .iter()
        .filter(|s| s.instance == instance && s.time >= start - 1e-9 && s.time <= end + 1e-9)
        .map(|s| s.metric(metric))
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (ClusterSpec, Vec<Instance>, StdRng) {
        let spec = ClusterSpec::with_instances(2);
        let instances = Instance::fleet(2, 7);
        let rng = StdRng::seed_from_u64(99);
        (spec, instances, rng)
    }

    #[test]
    fn sample_count_matches_window_and_fleet() {
        let (spec, instances, mut rng) = setup();
        let samples = sample_cluster(
            &spec,
            &instances,
            &[],
            0.0,
            60.0,
            &NoiseModel::none(),
            &mut rng,
        );
        // 13 ticks (0..=60 step 5) x 2 instances.
        assert_eq!(samples.len(), 26);
        for s in &samples {
            for name in METRIC_NAMES {
                assert!(s.metrics.contains_key(*name), "missing metric {name}");
            }
        }
    }

    #[test]
    fn busy_instance_shows_higher_cpu_and_load() {
        let (spec, instances, mut rng) = setup();
        let loads = vec![
            TaskLoad {
                instance: 0,
                start: 0.0,
                finish: 300.0,
                kind: TaskKind::Map,
                net_in_bytes_per_sec: 0.0,
                net_out_bytes_per_sec: 0.0,
            },
            TaskLoad {
                instance: 0,
                start: 0.0,
                finish: 300.0,
                kind: TaskKind::Map,
                net_in_bytes_per_sec: 0.0,
                net_out_bytes_per_sec: 0.0,
            },
        ];
        let samples = sample_cluster(
            &spec,
            &instances,
            &loads,
            0.0,
            300.0,
            &NoiseModel::none(),
            &mut rng,
        );
        let busy_cpu = average_metric(&samples, 0, "cpu_user", 100.0, 300.0).unwrap();
        let idle_cpu = average_metric(&samples, 1, "cpu_user", 100.0, 300.0).unwrap();
        assert!(
            busy_cpu > idle_cpu + 20.0,
            "busy {busy_cpu} idle {idle_cpu}"
        );
        let busy_load = average_metric(&samples, 0, "load_five", 100.0, 300.0).unwrap();
        let idle_load = average_metric(&samples, 1, "load_five", 100.0, 300.0).unwrap();
        assert!(busy_load > idle_load + 0.5);
        let busy_mem = average_metric(&samples, 0, "mem_free", 100.0, 300.0).unwrap();
        let idle_mem = average_metric(&samples, 1, "mem_free", 100.0, 300.0).unwrap();
        assert!(busy_mem < idle_mem);
    }

    #[test]
    fn shuffle_traffic_shows_up_in_network_metrics() {
        let (spec, instances, mut rng) = setup();
        let loads = vec![TaskLoad {
            instance: 1,
            start: 0.0,
            finish: 200.0,
            kind: TaskKind::Reduce,
            net_in_bytes_per_sec: 20.0e6,
            net_out_bytes_per_sec: 1.0e6,
        }];
        let samples = sample_cluster(
            &spec,
            &instances,
            &loads,
            0.0,
            200.0,
            &NoiseModel::none(),
            &mut rng,
        );
        let shuffling_in = average_metric(&samples, 1, "bytes_in", 0.0, 200.0).unwrap();
        let quiet_in = average_metric(&samples, 0, "bytes_in", 0.0, 200.0).unwrap();
        assert!(shuffling_in > 100.0 * quiet_in);
        let pkts = average_metric(&samples, 1, "pkts_in", 0.0, 200.0).unwrap();
        assert!(pkts > 1_000.0);
    }

    #[test]
    fn load_average_decays_after_tasks_finish() {
        let (spec, instances, mut rng) = setup();
        let loads = vec![TaskLoad {
            instance: 0,
            start: 0.0,
            finish: 100.0,
            kind: TaskKind::Map,
            net_in_bytes_per_sec: 0.0,
            net_out_bytes_per_sec: 0.0,
        }];
        let samples = sample_cluster(
            &spec,
            &instances,
            &loads,
            0.0,
            400.0,
            &NoiseModel::none(),
            &mut rng,
        );
        let during = average_metric(&samples, 0, "load_one", 50.0, 100.0).unwrap();
        let after = average_metric(&samples, 0, "load_one", 300.0, 400.0).unwrap();
        assert!(during > after + 0.3, "during {during} after {after}");
    }

    #[test]
    fn empty_window_or_fleet_yields_no_samples() {
        let (spec, instances, mut rng) = setup();
        assert!(sample_cluster(
            &spec,
            &instances,
            &[],
            10.0,
            10.0,
            &NoiseModel::none(),
            &mut rng
        )
        .is_empty());
        assert!(
            sample_cluster(&spec, &[], &[], 0.0, 100.0, &NoiseModel::none(), &mut rng).is_empty()
        );
        assert_eq!(average_metric(&[], 0, "cpu_user", 0.0, 10.0), None);
    }
}
