//! FIFO slot scheduling of tasks onto instances.
//!
//! Hadoop's JobTracker assigns pending tasks to the first free slot.  The
//! simulator reproduces that with a wave-style scheduler: scheduling happens
//! in rounds; at every round the earliest slot-free time is found, all slots
//! free at that time receive the next pending tasks, and the tasks assigned
//! in the same round on the same instance observe each other's load.
//!
//! Contention is resolved at task start: a task that starts while `c - 1`
//! other tasks are running (or starting) on the same instance is slowed by
//! the cluster's contention multiplier for concurrency `c`.  This is what
//! creates the "last task runs faster" pattern the paper's first PXQL query
//! asks about: the final task of an odd wave runs alone on its instance and
//! finishes noticeably earlier than its peers.

use crate::config::ClusterSpec;
use crate::cost::CostModel;

/// A task to be scheduled: its solo (contention-free) duration in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingTask {
    /// Index of the task within its phase (map index or reduce index).
    pub index: usize,
    /// Duration the task would need if it ran alone on an instance.
    pub solo_duration: f64,
}

/// The placement and timing the scheduler decided for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledTask {
    /// Index of the task within its phase.
    pub index: usize,
    /// Instance the task ran on.
    pub instance: usize,
    /// Start time in seconds.
    pub start: f64,
    /// Finish time in seconds (solo duration × contention multiplier).
    pub finish: f64,
    /// Number of tasks (including this one) running on the instance at start.
    pub concurrency: usize,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    instance: usize,
    free_at: f64,
}

const TIME_EPS: f64 = 1e-6;

/// Schedules `tasks` (in FIFO order) onto `slots_per_instance` slots of each
/// of the cluster's instances, starting no earlier than `phase_start`.
///
/// Returns one [`ScheduledTask`] per input task, ordered by task index.
pub fn schedule_phase(
    cluster: &ClusterSpec,
    tasks: &[PendingTask],
    slots_per_instance: usize,
    phase_start: f64,
) -> Vec<ScheduledTask> {
    let num_instances = cluster.num_instances.max(1);
    let slots_per_instance = slots_per_instance.max(1);

    // Slot list in round-robin instance order so that consecutive tasks
    // spread across instances the way Hadoop heartbeat assignment roughly
    // does.
    let mut slots: Vec<Slot> = Vec::with_capacity(num_instances * slots_per_instance);
    for _slot in 0..slots_per_instance {
        for instance in 0..num_instances {
            slots.push(Slot {
                instance,
                free_at: phase_start,
            });
        }
    }

    let mut scheduled: Vec<ScheduledTask> = Vec::with_capacity(tasks.len());
    // Intervals of already-started tasks per instance.
    let mut placed: Vec<Vec<(f64, f64)>> = vec![Vec::new(); num_instances];

    let mut next_task = 0usize;
    while next_task < tasks.len() {
        // Earliest time any slot becomes free.
        let round_time = slots
            .iter()
            .map(|s| s.free_at)
            .fold(f64::INFINITY, f64::min)
            .max(phase_start);

        // All slots free at (roughly) that time, in stable order.
        let free_slot_ids: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.free_at <= round_time + TIME_EPS)
            .map(|(i, _)| i)
            .collect();

        // Assign the next pending tasks to those slots.
        let batch_len = free_slot_ids.len().min(tasks.len() - next_task);
        let batch: Vec<(usize, usize)> = (0..batch_len)
            .map(|offset| (next_task + offset, free_slot_ids[offset]))
            .collect();
        next_task += batch_len;

        // Per-instance number of tasks assigned in this round.
        let mut batch_per_instance = vec![0usize; num_instances];
        for &(_, slot_id) in &batch {
            batch_per_instance[slots[slot_id].instance] += 1;
        }

        // Tasks from previous rounds still running at the round time,
        // snapshotted before this round's tasks are placed so that batch
        // members are not double counted.
        let still_running_before: Vec<usize> = (0..num_instances)
            .map(|instance| {
                placed[instance]
                    .iter()
                    .filter(|(s, f)| *s <= round_time + TIME_EPS && *f > round_time + TIME_EPS)
                    .count()
            })
            .collect();

        for (task_pos, slot_id) in batch {
            let task = tasks[task_pos];
            let instance = slots[slot_id].instance;
            let start = round_time;

            // Tasks already running on this instance at the start time, plus
            // every task of this round assigned to the same instance
            // (including this one).
            let concurrency = still_running_before[instance] + batch_per_instance[instance];
            let multiplier = CostModel::contention_multiplier(cluster, concurrency);
            let finish = start + task.solo_duration * multiplier;

            placed[instance].push((start, finish));
            slots[slot_id].free_at = finish;
            scheduled.push(ScheduledTask {
                index: task.index,
                instance,
                start,
                finish,
                concurrency,
            });
        }
    }

    scheduled.sort_by_key(|t| t.index);
    scheduled
}

/// The finish time of the last task of a scheduled phase (or `phase_start`
/// when the phase has no tasks).
pub fn phase_finish(scheduled: &[ScheduledTask], phase_start: f64) -> f64 {
    scheduled
        .iter()
        .map(|t| t.finish)
        .fold(phase_start, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_tasks(n: usize, solo: f64) -> Vec<PendingTask> {
        (0..n)
            .map(|index| PendingTask {
                index,
                solo_duration: solo,
            })
            .collect()
    }

    #[test]
    fn single_wave_fills_all_slots() {
        let cluster = ClusterSpec::with_instances(4); // 8 map slots
        let tasks = uniform_tasks(8, 30.0);
        let scheduled = schedule_phase(&cluster, &tasks, cluster.map_slots_per_instance, 0.0);
        assert_eq!(scheduled.len(), 8);
        assert!(scheduled.iter().all(|t| t.start == 0.0));
        // Every instance runs exactly two tasks, and both observe each other.
        for t in &scheduled {
            assert_eq!(t.concurrency, 2);
        }
        let per_instance: Vec<usize> = (0..4)
            .map(|i| scheduled.iter().filter(|t| t.instance == i).count())
            .collect();
        assert_eq!(per_instance, vec![2, 2, 2, 2]);
    }

    #[test]
    fn co_scheduled_tasks_observe_each_other() {
        let cluster = ClusterSpec::with_instances(1); // 2 map slots on 1 instance
        let tasks = uniform_tasks(2, 100.0);
        let scheduled = schedule_phase(&cluster, &tasks, 2, 0.0);
        assert_eq!(scheduled[0].concurrency, 2);
        assert_eq!(scheduled[1].concurrency, 2);
        // Both are slowed by the same contention multiplier.
        let expected = 100.0 * CostModel::contention_multiplier(&cluster, 2);
        assert!((scheduled[0].finish - expected).abs() < 1e-6);
        assert!((scheduled[1].finish - expected).abs() < 1e-6);
    }

    #[test]
    fn last_task_of_odd_wave_runs_alone_and_faster() {
        // 1 instance, 2 slots, 5 equal tasks: the 5th task starts once both
        // slots are free after two full waves and runs with no co-located
        // task, so it is the fastest.
        let cluster = ClusterSpec::with_instances(1);
        let tasks = uniform_tasks(5, 60.0);
        let scheduled = schedule_phase(&cluster, &tasks, 2, 0.0);
        let durations: Vec<f64> = scheduled.iter().map(|t| t.finish - t.start).collect();
        let last = durations[4];
        for (i, d) in durations.iter().enumerate().take(4) {
            assert!(last < *d, "task {i} ran {d}s, last ran {last}s");
        }
        assert_eq!(scheduled[4].concurrency, 1);
    }

    #[test]
    fn waves_respect_slot_capacity() {
        let cluster = ClusterSpec::with_instances(2); // 4 map slots
        let tasks = uniform_tasks(10, 20.0);
        let scheduled = schedule_phase(&cluster, &tasks, cluster.map_slots_per_instance, 0.0);
        // At any scheduled start, no more than 4 tasks run concurrently.
        for t in &scheduled {
            let concurrent = scheduled
                .iter()
                .filter(|o| o.start <= t.start && o.finish > t.start)
                .count();
            assert!(concurrent <= 4, "{concurrent} tasks at t={}", t.start);
        }
        // The phase takes at least three waves of ~20s.
        assert!(phase_finish(&scheduled, 0.0) >= 60.0);
    }

    #[test]
    fn phase_start_is_respected() {
        let cluster = ClusterSpec::with_instances(2);
        let tasks = uniform_tasks(3, 10.0);
        let scheduled = schedule_phase(&cluster, &tasks, 2, 500.0);
        assert!(scheduled.iter().all(|t| t.start >= 500.0));
        assert_eq!(phase_finish(&[], 500.0), 500.0);
    }

    #[test]
    fn more_instances_shorten_the_phase() {
        let tasks = uniform_tasks(32, 30.0);
        let small = ClusterSpec::with_instances(2);
        let large = ClusterSpec::with_instances(16);
        let t_small = phase_finish(&schedule_phase(&small, &tasks, 2, 0.0), 0.0);
        let t_large = phase_finish(&schedule_phase(&large, &tasks, 2, 0.0), 0.0);
        assert!(t_large < t_small);
    }

    #[test]
    fn results_are_in_task_index_order() {
        let cluster = ClusterSpec::with_instances(3);
        let tasks = uniform_tasks(17, 12.0);
        let scheduled = schedule_phase(&cluster, &tasks, 2, 0.0);
        let indices: Vec<usize> = scheduled.iter().map(|t| t.index).collect();
        assert_eq!(indices, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_list_is_fine() {
        let cluster = ClusterSpec::default();
        let scheduled = schedule_phase(&cluster, &[], 2, 0.0);
        assert!(scheduled.is_empty());
    }
}
