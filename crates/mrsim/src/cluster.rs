//! The cluster: ties together configuration, scheduling, the cost model and
//! the monitor, and produces [`JobTrace`]s.

use crate::config::{ClusterSpec, JobSpec};
use crate::cost::CostModel;
use crate::ganglia::{sample_cluster, TaskLoad};
use crate::instance::Instance;
use crate::noise::NoiseModel;
use crate::scheduler::{phase_finish, schedule_phase, PendingTask};
use crate::trace::{counters, JobTrace, TaskKind, TaskTrace};
use rand::rngs::StdRng;
use rand::RngExt;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A simulated MapReduce cluster.
///
/// A `Cluster` is cheap to create; the paper's methodology (one cluster per
/// parameter configuration, one or more jobs run on it) is reproduced by the
/// workload driver creating many clusters with different specs and seeds.
#[derive(Debug)]
pub struct Cluster {
    spec: ClusterSpec,
    instances: Vec<Instance>,
    cost_model: CostModel,
    noise: NoiseModel,
    rng: StdRng,
    /// Identifier embedded in job ids (Hadoop uses the JobTracker start
    /// timestamp; we use the cluster seed).
    run_id: u64,
    job_seq: u32,
    clock: f64,
}

impl Cluster {
    /// Creates a cluster with the default cost and noise models.
    pub fn new(spec: ClusterSpec, seed: u64) -> Self {
        Cluster::with_models(spec, seed, CostModel::default(), NoiseModel::default())
    }

    /// Creates a cluster with explicit cost and noise models (used by tests
    /// that need exact determinism).
    pub fn with_models(
        spec: ClusterSpec,
        seed: u64,
        cost_model: CostModel,
        noise: NoiseModel,
    ) -> Self {
        let instances = Instance::fleet(spec.num_instances, seed);
        Cluster {
            spec,
            instances,
            cost_model,
            noise,
            rng: StdRng::seed_from_u64(seed),
            run_id: 202_600_000_000 + (seed % 99_999_999),
            job_seq: 0,
            clock: 0.0,
        }
    }

    /// The cluster specification.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The cluster's instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// The simulated wall-clock time after the last job finished.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Runs one job to completion and returns its trace.
    pub fn run_job(&mut self, job: JobSpec) -> JobTrace {
        self.job_seq += 1;
        let job_id = format!("job_{}_{:04}", self.run_id, self.job_seq);
        let job_name = format!("PigLatin:{}", job.script.file_name());

        let submit_time = job.submit_time.max(self.clock);
        // Job setup (split computation, Pig plan compilation) before the
        // first task launches; the remainder of the job overhead is cleanup
        // after the last task.
        let setup = self.cost_model.job_overhead_secs / 3.0;
        let cleanup = self.cost_model.job_overhead_secs - setup;
        let launch_time = submit_time + setup * self.noise.factor(&mut self.rng);

        // ------------------------------------------------------------------
        // Map phase.
        // ------------------------------------------------------------------
        let num_maps = job.num_map_tasks();
        let mut map_costs = Vec::with_capacity(num_maps);
        let mut map_pending = Vec::with_capacity(num_maps);
        for index in 0..num_maps {
            let cost = self.cost_model.map_cost(&self.spec, &job, index);
            let solo = cost.total_secs() * self.noise.factor(&mut self.rng);
            map_pending.push(PendingTask {
                index,
                solo_duration: solo,
            });
            map_costs.push(cost);
        }
        let map_sched = schedule_phase(
            &self.spec,
            &map_pending,
            self.spec.map_slots_per_instance,
            launch_time,
        );
        let map_finish = phase_finish(&map_sched, launch_time);

        let total_map_output_bytes: u64 = map_costs.iter().map(|c| c.output_bytes).sum();
        let total_map_output_records: u64 = map_costs.iter().map(|c| c.output_records).sum();

        // ------------------------------------------------------------------
        // Reduce phase (starts once every map task finished).
        // ------------------------------------------------------------------
        let num_reduces = job.num_reduce_tasks(self.spec.num_instances);
        let mut reduce_costs = Vec::with_capacity(num_reduces);
        let mut reduce_pending = Vec::with_capacity(num_reduces);
        let mut reduce_shuffle_bytes = Vec::with_capacity(num_reduces);
        for index in 0..num_reduces {
            // Hash partitioning is never perfectly even; skew the partition
            // sizes by a few percent.
            let skew = 1.0 + (self.rng.random_range(-0.05..0.05f64));
            let share = (total_map_output_bytes as f64 / num_reduces as f64 * skew).max(0.0);
            let shuffle_bytes = share as u64;
            let cost = self
                .cost_model
                .reduce_cost(&self.spec, &job, shuffle_bytes, num_maps);
            let solo = cost.total_secs() * self.noise.factor(&mut self.rng);
            reduce_pending.push(PendingTask {
                index,
                solo_duration: solo,
            });
            reduce_costs.push(cost);
            reduce_shuffle_bytes.push(shuffle_bytes);
        }
        let reduce_sched = schedule_phase(
            &self.spec,
            &reduce_pending,
            self.spec.reduce_slots_per_instance,
            map_finish,
        );
        let reduce_finish = phase_finish(&reduce_sched, map_finish);

        let finish_time = reduce_finish + cleanup * self.noise.factor(&mut self.rng);

        // ------------------------------------------------------------------
        // Task traces and counters.
        // ------------------------------------------------------------------
        let mut tasks = Vec::with_capacity(num_maps + num_reduces);
        let mut loads = Vec::with_capacity(num_maps + num_reduces);

        for (sched, cost) in map_sched.iter().zip(map_costs.iter()) {
            let index = sched.index;
            let block_bytes = job.block_bytes(index);
            let block_records = job.block_records(index);
            let instance = &self.instances[sched.instance];
            let task_id = format!("task_{}_{:04}_m_{:06}", self.run_id, self.job_seq, index);
            let attempt_id = format!(
                "attempt_{}_{:04}_m_{:06}_0",
                self.run_id, self.job_seq, index
            );
            let mut task_counters = BTreeMap::new();
            task_counters.insert(counters::HDFS_BYTES_READ.to_string(), block_bytes);
            task_counters.insert(counters::MAP_INPUT_BYTES.to_string(), block_bytes);
            task_counters.insert(counters::MAP_INPUT_RECORDS.to_string(), block_records);
            task_counters.insert(counters::MAP_OUTPUT_BYTES.to_string(), cost.output_bytes);
            task_counters.insert(
                counters::MAP_OUTPUT_RECORDS.to_string(),
                cost.output_records,
            );
            task_counters.insert(counters::FILE_BYTES_WRITTEN.to_string(), cost.output_bytes);
            task_counters.insert(counters::SPILLED_RECORDS.to_string(), cost.output_records);
            task_counters.insert(counters::COMBINE_INPUT_RECORDS.to_string(), 0);
            task_counters.insert(counters::COMBINE_OUTPUT_RECORDS.to_string(), 0);

            let duration = (sched.finish - sched.start).max(1e-6);
            // Roughly one HDFS replica in three is remote.
            let remote_read_rate = block_bytes as f64 / 3.0 / duration;
            loads.push(TaskLoad {
                instance: sched.instance,
                start: sched.start,
                finish: sched.finish,
                kind: TaskKind::Map,
                net_in_bytes_per_sec: remote_read_rate,
                net_out_bytes_per_sec: cost.output_bytes as f64 / 3.0 / duration,
            });
            tasks.push(TaskTrace {
                task_id,
                attempt_id,
                kind: TaskKind::Map,
                instance: sched.instance,
                tracker_name: instance.tracker_name.clone(),
                start_time: sched.start,
                finish_time: sched.finish,
                shuffle_finish_time: None,
                sort_finish_time: None,
                concurrency: sched.concurrency,
                counters: task_counters,
            });
        }

        for (sched, cost) in reduce_sched.iter().zip(reduce_costs.iter()) {
            let index = sched.index;
            let instance = &self.instances[sched.instance];
            let task_id = format!("task_{}_{:04}_r_{:06}", self.run_id, self.job_seq, index);
            let attempt_id = format!(
                "attempt_{}_{:04}_r_{:06}_0",
                self.run_id, self.job_seq, index
            );
            let shuffle_bytes = reduce_shuffle_bytes[index];
            let input_records =
                (total_map_output_records as f64 / num_reduces as f64).round() as u64;
            let groups = match job.script {
                crate::pig::PigScript::SimpleGroupBy => {
                    // Distinct users per reducer; bounded by the record count.
                    (input_records / 12).max(1).min(input_records.max(1))
                }
                crate::pig::PigScript::SimpleFilter => input_records,
            };
            let output_records = match job.script {
                crate::pig::PigScript::SimpleGroupBy => groups,
                crate::pig::PigScript::SimpleFilter => input_records,
            };
            let merge_passes = CostModel::merge_passes(num_maps, job.io_sort_factor) as u64;

            let mut task_counters = BTreeMap::new();
            task_counters.insert(counters::REDUCE_SHUFFLE_BYTES.to_string(), shuffle_bytes);
            task_counters.insert(counters::REDUCE_INPUT_RECORDS.to_string(), input_records);
            task_counters.insert(counters::REDUCE_INPUT_GROUPS.to_string(), groups);
            task_counters.insert(counters::REDUCE_OUTPUT_RECORDS.to_string(), output_records);
            task_counters.insert(counters::HDFS_BYTES_WRITTEN.to_string(), cost.output_bytes);
            task_counters.insert(
                counters::FILE_BYTES_READ.to_string(),
                shuffle_bytes * merge_passes,
            );
            task_counters.insert(
                counters::FILE_BYTES_WRITTEN.to_string(),
                shuffle_bytes * merge_passes,
            );

            // The scheduler scaled the whole task by the contention
            // multiplier; distribute the scaled duration over the phases in
            // proportion to their solo costs.
            let duration = (sched.finish - sched.start).max(1e-6);
            let solo_total = cost.total_secs().max(1e-9);
            let shuffle_span = duration * (cost.shuffle_secs + cost.overhead_secs) / solo_total;
            let sort_span = duration * cost.sort_secs / solo_total;
            let shuffle_finish = sched.start + shuffle_span;
            let sort_finish = shuffle_finish + sort_span;

            loads.push(TaskLoad {
                instance: sched.instance,
                start: sched.start,
                finish: sched.finish,
                kind: TaskKind::Reduce,
                net_in_bytes_per_sec: shuffle_bytes as f64 / duration,
                net_out_bytes_per_sec: cost.output_bytes as f64 * 2.0 / 3.0 / duration,
            });
            tasks.push(TaskTrace {
                task_id,
                attempt_id,
                kind: TaskKind::Reduce,
                instance: sched.instance,
                tracker_name: instance.tracker_name.clone(),
                start_time: sched.start,
                finish_time: sched.finish,
                shuffle_finish_time: Some(shuffle_finish),
                sort_finish_time: Some(sort_finish),
                concurrency: sched.concurrency,
                counters: task_counters,
            });
        }

        // Job-level counters: sums over tasks plus launch totals.
        let mut job_counters: BTreeMap<String, u64> = BTreeMap::new();
        for task in &tasks {
            for (name, value) in &task.counters {
                *job_counters.entry(name.clone()).or_insert(0) += value;
            }
        }
        job_counters.insert(counters::TOTAL_LAUNCHED_MAPS.to_string(), num_maps as u64);
        job_counters.insert(
            counters::TOTAL_LAUNCHED_REDUCES.to_string(),
            num_reduces as u64,
        );

        // Ganglia monitoring over the whole job window.
        let ganglia = sample_cluster(
            &self.spec,
            &self.instances,
            &loads,
            submit_time,
            finish_time,
            &self.noise,
            &mut self.rng,
        );

        // Leave a small gap before the next job on this cluster.
        self.clock = finish_time + 5.0;

        JobTrace {
            job_id,
            job_name,
            cluster: self.spec.clone(),
            spec: job,
            submit_time,
            launch_time,
            finish_time,
            tasks,
            counters: job_counters,
            ganglia,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pig::PigScript;
    use crate::{GB, MB};

    fn quiet_cluster(instances: usize, seed: u64) -> Cluster {
        Cluster::with_models(
            ClusterSpec::with_instances(instances),
            seed,
            CostModel::default(),
            NoiseModel::none(),
        )
    }

    #[test]
    fn job_produces_expected_task_counts() {
        let mut cluster = quiet_cluster(4, 1);
        let job = JobSpec {
            input_bytes: GB,
            dfs_block_size: 128 * MB,
            reduce_tasks_factor: 1.5,
            ..JobSpec::default()
        };
        let trace = cluster.run_job(job);
        assert_eq!(trace.map_tasks().count(), 8);
        assert_eq!(trace.reduce_tasks().count(), 6);
        assert_eq!(trace.counter(counters::TOTAL_LAUNCHED_MAPS), 8);
        assert!(trace.duration() > 0.0);
        assert!(!trace.ganglia.is_empty());
        assert!(trace.tasks.iter().all(|t| t.finish_time > t.start_time));
        assert!(trace.job_id.starts_with("job_"));
    }

    #[test]
    fn larger_input_takes_longer_on_a_small_cluster() {
        let job_small = JobSpec {
            input_bytes: (1.3 * GB as f64) as u64,
            input_records: 13_000_000,
            ..JobSpec::default()
        };
        let job_large = JobSpec {
            input_bytes: (2.6 * GB as f64) as u64,
            input_records: 26_000_000,
            ..JobSpec::default()
        };
        let d_small = quiet_cluster(2, 3).run_job(job_small).duration();
        let d_large = quiet_cluster(2, 3).run_job(job_large).duration();
        assert!(
            d_large > d_small * 1.4,
            "large {d_large}s vs small {d_small}s"
        );
    }

    #[test]
    fn motivating_example_same_duration_with_large_blocks_and_cluster() {
        // Section 2.1: with 128 MB blocks and a cluster large enough that
        // neither job fills it, a 32x smaller input does not run faster.
        let big_cluster = || {
            Cluster::with_models(
                ClusterSpec::with_instances(150),
                7,
                CostModel::default(),
                NoiseModel::none(),
            )
        };
        let large = JobSpec {
            input_bytes: 32 * GB,
            input_records: 320_000_000,
            dfs_block_size: 128 * MB,
            ..JobSpec::default()
        };
        let small = JobSpec {
            input_bytes: GB,
            input_records: 10_000_000,
            dfs_block_size: 128 * MB,
            ..JobSpec::default()
        };
        let d_large = big_cluster().run_job(large).duration();
        let d_small = big_cluster().run_job(small).duration();
        let ratio = d_large / d_small;
        assert!(
            (0.8..1.3).contains(&ratio),
            "expected similar durations, got {d_large}s vs {d_small}s"
        );
    }

    #[test]
    fn more_instances_speed_up_a_big_job() {
        let job = || JobSpec {
            input_bytes: (2.6 * GB as f64) as u64,
            input_records: 26_000_000,
            dfs_block_size: 64 * MB,
            ..JobSpec::default()
        };
        let d2 = quiet_cluster(2, 5).run_job(job()).duration();
        let d16 = quiet_cluster(16, 5).run_job(job()).duration();
        assert!(d16 < d2 * 0.5, "16 instances {d16}s vs 2 instances {d2}s");
    }

    #[test]
    fn groupby_jobs_are_slower_than_filter_jobs() {
        let base = JobSpec {
            input_bytes: (1.3 * GB as f64) as u64,
            input_records: 13_000_000,
            ..JobSpec::default()
        };
        let filter = JobSpec {
            script: PigScript::SimpleFilter,
            ..base.clone()
        };
        let groupby = JobSpec {
            script: PigScript::SimpleGroupBy,
            ..base
        };
        let d_filter = quiet_cluster(4, 11).run_job(filter).duration();
        let d_groupby = quiet_cluster(4, 11).run_job(groupby).duration();
        assert!(d_groupby > d_filter);
    }

    #[test]
    fn consecutive_jobs_advance_the_clock_and_sequence() {
        let mut cluster = quiet_cluster(2, 13);
        let a = cluster.run_job(JobSpec::default());
        let b = cluster.run_job(JobSpec::default());
        assert!(b.submit_time >= a.finish_time);
        assert_ne!(a.job_id, b.job_id);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let job = JobSpec::default();
        let a = Cluster::new(ClusterSpec::with_instances(4), 21).run_job(job.clone());
        let b = Cluster::new(ClusterSpec::with_instances(4), 21).run_job(job);
        assert_eq!(a.finish_time, b.finish_time);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(b.tasks.iter()) {
            assert_eq!(x.finish_time, y.finish_time);
            assert_eq!(x.counters, y.counters);
        }
    }

    #[test]
    fn reduce_phases_are_ordered() {
        let mut cluster = quiet_cluster(4, 17);
        let trace = cluster.run_job(JobSpec {
            script: PigScript::SimpleGroupBy,
            ..JobSpec::default()
        });
        let last_map_finish = trace
            .map_tasks()
            .map(|t| t.finish_time)
            .fold(0.0f64, f64::max);
        for reduce in trace.reduce_tasks() {
            assert!(reduce.start_time >= last_map_finish - 1e-6);
            let shuffle = reduce.shuffle_finish_time.unwrap();
            let sort = reduce.sort_finish_time.unwrap();
            assert!(reduce.start_time <= shuffle);
            assert!(shuffle <= sort);
            assert!(sort <= reduce.finish_time + 1e-6);
        }
    }
}
