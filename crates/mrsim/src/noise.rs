//! Multiplicative runtime noise.
//!
//! Real clusters — and especially virtualised EC2 instances, as Schad et al.
//! (cited by the paper) measured — show run-to-run variance even for
//! identical configurations.  The simulator injects a small amount of
//! log-normal multiplicative noise into every task phase so that the
//! execution log PerfXplain learns from is not perfectly deterministic in its
//! raw runtimes, while keeping the overall behaviour reproducible for a fixed
//! seed.

use rand::rngs::StdRng;
use rand::RngExt;

/// A source of multiplicative noise factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of the underlying normal distribution (in log
    /// space).  0 disables noise entirely.
    pub sigma: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel { sigma: 0.06 }
    }
}

impl NoiseModel {
    /// A noise-free model, useful for tests that need exact determinism.
    pub fn none() -> Self {
        NoiseModel { sigma: 0.0 }
    }

    /// Samples a standard normal deviate via the Box–Muller transform.
    fn standard_normal(rng: &mut StdRng) -> f64 {
        // Avoid ln(0).
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples a multiplicative factor centred on 1.0.
    pub fn factor(&self, rng: &mut StdRng) -> f64 {
        if self.sigma <= 0.0 {
            return 1.0;
        }
        let z = Self::standard_normal(rng);
        (self.sigma * z).exp()
    }

    /// Samples a small additive jitter in `[0, max_seconds)`, used for task
    /// launch overhead variation.
    pub fn jitter(&self, rng: &mut StdRng, max_seconds: f64) -> f64 {
        if max_seconds <= 0.0 {
            return 0.0;
        }
        rng.random_range(0.0..max_seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_exactly_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = NoiseModel::none();
        for _ in 0..10 {
            assert_eq!(model.factor(&mut rng), 1.0);
        }
    }

    #[test]
    fn factors_are_positive_and_centred_near_one() {
        let mut rng = StdRng::seed_from_u64(42);
        let model = NoiseModel { sigma: 0.1 };
        let samples: Vec<f64> = (0..2_000).map(|_| model.factor(&mut rng)).collect();
        assert!(samples.iter().all(|&f| f > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
        // Noise actually varies.
        assert!(samples.iter().any(|&f| f > 1.02));
        assert!(samples.iter().any(|&f| f < 0.98));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let model = NoiseModel::default();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            assert_eq!(model.factor(&mut a), model.factor(&mut b));
        }
    }

    #[test]
    fn jitter_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = NoiseModel::default();
        for _ in 0..100 {
            let j = model.jitter(&mut rng, 2.0);
            assert!((0.0..2.0).contains(&j));
        }
        assert_eq!(model.jitter(&mut rng, 0.0), 0.0);
    }
}
