//! Raw execution traces produced by the simulator.
//!
//! A [`JobTrace`] captures everything Hadoop and Ganglia would have recorded
//! about one job execution: configuration, per-task attempt timings and
//! counters, job-level counters and the monitoring samples of every instance
//! while the job ran.  The `perfxplain-logs` crate renders traces into
//! Hadoop-style history files and parses them back; PerfXplain itself never
//! looks at traces directly.

use crate::config::{ClusterSpec, JobSpec};
use crate::ganglia::GangliaSample;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Map or reduce task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// A map task.
    Map,
    /// A reduce task.
    Reduce,
}

impl TaskKind {
    /// The uppercase string Hadoop uses in history files.
    pub fn as_history_str(&self) -> &'static str {
        match self {
            TaskKind::Map => "MAP",
            TaskKind::Reduce => "REDUCE",
        }
    }

    /// The single-letter code used inside task identifiers (`m` / `r`).
    pub fn id_code(&self) -> char {
        match self {
            TaskKind::Map => 'm',
            TaskKind::Reduce => 'r',
        }
    }
}

/// One task attempt (the simulator models exactly one successful attempt per
/// task: no speculative execution, no failures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTrace {
    /// Task identifier, e.g. `task_202601010101_0004_m_000007`.
    pub task_id: String,
    /// Attempt identifier, e.g. `attempt_202601010101_0004_m_000007_0`.
    pub attempt_id: String,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Index of the instance the task ran on.
    pub instance: usize,
    /// Hostname of that instance (the Hadoop `tracker_name`).
    pub tracker_name: String,
    /// Simulated start time in seconds.
    pub start_time: f64,
    /// Simulated finish time in seconds.
    pub finish_time: f64,
    /// For reduce tasks: when the shuffle phase finished.
    pub shuffle_finish_time: Option<f64>,
    /// For reduce tasks: when the merge/sort phase finished.
    pub sort_finish_time: Option<f64>,
    /// Number of tasks (including this one) running on the instance when the
    /// task started; drives the contention multiplier and the load metrics.
    pub concurrency: usize,
    /// Hadoop-style counters (`HDFS_BYTES_READ`, `MAP_OUTPUT_RECORDS`, …).
    pub counters: BTreeMap<String, u64>,
}

impl TaskTrace {
    /// Task duration in seconds.
    pub fn duration(&self) -> f64 {
        self.finish_time - self.start_time
    }

    /// Convenience accessor for a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// A full simulated job execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTrace {
    /// Job identifier, e.g. `job_202601010101_0004`.
    pub job_id: String,
    /// Job name (the Pig script plus a sequence number).
    pub job_name: String,
    /// The cluster the job ran on.
    pub cluster: ClusterSpec,
    /// The job configuration.
    pub spec: JobSpec,
    /// Submit time in seconds.
    pub submit_time: f64,
    /// Launch time in seconds (after job setup).
    pub launch_time: f64,
    /// Finish time in seconds.
    pub finish_time: f64,
    /// Per-task traces (maps first, then reduces).
    pub tasks: Vec<TaskTrace>,
    /// Job-level counters (sums of the task counters plus job totals).
    pub counters: BTreeMap<String, u64>,
    /// Ganglia samples covering the job's execution window.
    pub ganglia: Vec<GangliaSample>,
}

impl JobTrace {
    /// End-to-end duration (submit to finish) in seconds — the quantity the
    /// paper's `duration` feature records for jobs.
    pub fn duration(&self) -> f64 {
        self.finish_time - self.submit_time
    }

    /// The map tasks of the job.
    pub fn map_tasks(&self) -> impl Iterator<Item = &TaskTrace> {
        self.tasks.iter().filter(|t| t.kind == TaskKind::Map)
    }

    /// The reduce tasks of the job.
    pub fn reduce_tasks(&self) -> impl Iterator<Item = &TaskTrace> {
        self.tasks.iter().filter(|t| t.kind == TaskKind::Reduce)
    }

    /// Convenience accessor for a job-level counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Ganglia samples for one instance, in time order.
    pub fn ganglia_for_instance(&self, instance: usize) -> impl Iterator<Item = &GangliaSample> {
        self.ganglia.iter().filter(move |s| s.instance == instance)
    }
}

/// Standard Hadoop counter names emitted by the simulator.
pub mod counters {
    /// Bytes read from HDFS.
    pub const HDFS_BYTES_READ: &str = "HDFS_BYTES_READ";
    /// Bytes written to HDFS.
    pub const HDFS_BYTES_WRITTEN: &str = "HDFS_BYTES_WRITTEN";
    /// Bytes read from local disk (spills, merges).
    pub const FILE_BYTES_READ: &str = "FILE_BYTES_READ";
    /// Bytes written to local disk (spills, merges).
    pub const FILE_BYTES_WRITTEN: &str = "FILE_BYTES_WRITTEN";
    /// Records consumed by map tasks.
    pub const MAP_INPUT_RECORDS: &str = "MAP_INPUT_RECORDS";
    /// Bytes consumed by map tasks.
    pub const MAP_INPUT_BYTES: &str = "MAP_INPUT_BYTES";
    /// Records produced by map tasks.
    pub const MAP_OUTPUT_RECORDS: &str = "MAP_OUTPUT_RECORDS";
    /// Bytes produced by map tasks.
    pub const MAP_OUTPUT_BYTES: &str = "MAP_OUTPUT_BYTES";
    /// Records shuffled into reduce tasks.
    pub const REDUCE_INPUT_RECORDS: &str = "REDUCE_INPUT_RECORDS";
    /// Distinct keys seen by reduce tasks.
    pub const REDUCE_INPUT_GROUPS: &str = "REDUCE_INPUT_GROUPS";
    /// Records produced by reduce tasks.
    pub const REDUCE_OUTPUT_RECORDS: &str = "REDUCE_OUTPUT_RECORDS";
    /// Bytes shuffled.
    pub const REDUCE_SHUFFLE_BYTES: &str = "REDUCE_SHUFFLE_BYTES";
    /// Records spilled to disk.
    pub const SPILLED_RECORDS: &str = "SPILLED_RECORDS";
    /// Combined (map-side aggregated) input records.
    pub const COMBINE_INPUT_RECORDS: &str = "COMBINE_INPUT_RECORDS";
    /// Combined output records.
    pub const COMBINE_OUTPUT_RECORDS: &str = "COMBINE_OUTPUT_RECORDS";
    /// Total launched map tasks.
    pub const TOTAL_LAUNCHED_MAPS: &str = "TOTAL_LAUNCHED_MAPS";
    /// Total launched reduce tasks.
    pub const TOTAL_LAUNCHED_REDUCES: &str = "TOTAL_LAUNCHED_REDUCES";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace() -> JobTrace {
        let task = TaskTrace {
            task_id: "task_1_m_000000".into(),
            attempt_id: "attempt_1_m_000000_0".into(),
            kind: TaskKind::Map,
            instance: 0,
            tracker_name: "tracker_host0".into(),
            start_time: 10.0,
            finish_time: 35.0,
            shuffle_finish_time: None,
            sort_finish_time: None,
            concurrency: 2,
            counters: BTreeMap::from([(counters::MAP_INPUT_RECORDS.to_string(), 100u64)]),
        };
        JobTrace {
            job_id: "job_1".into(),
            job_name: "simple-filter.pig-1".into(),
            cluster: ClusterSpec::default(),
            spec: JobSpec::default(),
            submit_time: 0.0,
            launch_time: 5.0,
            finish_time: 60.0,
            tasks: vec![task],
            counters: BTreeMap::from([(counters::TOTAL_LAUNCHED_MAPS.to_string(), 1u64)]),
            ganglia: Vec::new(),
        }
    }

    #[test]
    fn durations_and_counters() {
        let trace = tiny_trace();
        assert_eq!(trace.duration(), 60.0);
        assert_eq!(trace.tasks[0].duration(), 25.0);
        assert_eq!(trace.counter(counters::TOTAL_LAUNCHED_MAPS), 1);
        assert_eq!(trace.counter("NOPE"), 0);
        assert_eq!(trace.tasks[0].counter(counters::MAP_INPUT_RECORDS), 100);
        assert_eq!(trace.map_tasks().count(), 1);
        assert_eq!(trace.reduce_tasks().count(), 0);
    }

    #[test]
    fn task_kind_codes() {
        assert_eq!(TaskKind::Map.as_history_str(), "MAP");
        assert_eq!(TaskKind::Reduce.id_code(), 'r');
    }

    #[test]
    fn serde_round_trip() {
        let trace = tiny_trace();
        let json = serde_json::to_string(&trace).unwrap();
        let back: JobTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }
}
