//! The per-phase task cost model.
//!
//! Task durations are composed of the classic Hadoop phases:
//!
//! * **map task** = task launch overhead + read block from HDFS + apply the
//!   map function + partition/sort/spill the map output;
//! * **reduce task** = task launch overhead + shuffle its partition over the
//!   network + merge the spilled segments (the number of merge passes
//!   depends on `io.sort.factor`) + apply the reduce function + write the
//!   output to HDFS.
//!
//! Every phase duration scales with the instance's relative CPU/disk/network
//! speed and is multiplied by a contention factor that grows with the number
//! of other tasks concurrently running on the same instance.

use crate::config::{ClusterSpec, JobSpec};
use crate::pig::PigScript;
use crate::MB;
use serde::{Deserialize, Serialize};

/// Breakdown of a map task's solo (contention-free, noise-free) runtime.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MapCost {
    /// Task launch / JVM start-up overhead in seconds.
    pub overhead_secs: f64,
    /// Time to read the input block.
    pub read_secs: f64,
    /// CPU time of the map function.
    pub cpu_secs: f64,
    /// Time to partition, sort and spill the map output.
    pub spill_secs: f64,
    /// Bytes produced by the map task.
    pub output_bytes: u64,
    /// Records produced by the map task.
    pub output_records: u64,
}

impl MapCost {
    /// Total solo duration in seconds.
    pub fn total_secs(&self) -> f64 {
        self.overhead_secs + self.read_secs + self.cpu_secs + self.spill_secs
    }
}

/// Breakdown of a reduce task's solo runtime.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ReduceCost {
    /// Task launch overhead in seconds.
    pub overhead_secs: f64,
    /// Time to shuffle this reducer's partition over the network.
    pub shuffle_secs: f64,
    /// Time to merge the shuffled segments on disk.
    pub sort_secs: f64,
    /// CPU time of the reduce function.
    pub cpu_secs: f64,
    /// Time to write the reducer output to HDFS.
    pub write_secs: f64,
    /// Bytes shuffled into the reducer.
    pub shuffle_bytes: u64,
    /// Bytes written by the reducer.
    pub output_bytes: u64,
}

impl ReduceCost {
    /// Total solo duration in seconds.
    pub fn total_secs(&self) -> f64 {
        self.overhead_secs + self.shuffle_secs + self.sort_secs + self.cpu_secs + self.write_secs
    }
}

/// The cost model: fixed overheads plus the cluster hardware rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Per-task launch overhead (JVM start, task setup) in seconds.
    pub task_overhead_secs: f64,
    /// Per-job fixed overhead (job setup, Pig plan compilation, job cleanup).
    pub job_overhead_secs: f64,
    /// Fraction of the disk bandwidth available to the spill/merge phases
    /// (they compete with HDFS traffic).
    pub spill_bandwidth_fraction: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            task_overhead_secs: 3.0,
            job_overhead_secs: 18.0,
            spill_bandwidth_fraction: 0.7,
        }
    }
}

impl CostModel {
    /// Number of merge passes needed to merge `segments` sorted runs when at
    /// most `io_sort_factor` can be merged at a time (at least one pass).
    pub fn merge_passes(segments: usize, io_sort_factor: u32) -> u32 {
        let factor = io_sort_factor.max(2) as f64;
        let mut passes = 1u32;
        let mut runs = segments.max(1) as f64;
        while runs > factor {
            runs = (runs / factor).ceil();
            passes += 1;
        }
        passes
    }

    /// Solo cost of map task `index` of `job` on `cluster`.
    pub fn map_cost(&self, cluster: &ClusterSpec, job: &JobSpec, index: usize) -> MapCost {
        let block_bytes = job.block_bytes(index);
        let block_records = job.block_records(index);
        let block_mb = block_bytes as f64 / MB as f64;
        let script = job.script;

        let read_secs = block_bytes as f64 / cluster.disk_bytes_per_sec;
        let cpu_secs = block_mb * script.map_cpu_sec_per_mb() / cluster.cpu_speed;

        let output_bytes = (block_bytes as f64 * script.map_output_ratio()) as u64;
        let output_records = (block_records as f64 * script.map_selectivity()).round() as u64;

        // The map output is buffered, partitioned, sorted and spilled to
        // local disk; small io.sort.factor values force extra merge passes
        // over the spills before they are served to reducers.
        let spill_passes = Self::merge_passes(
            (block_mb / 100.0).ceil().max(1.0) as usize,
            job.io_sort_factor,
        ) as f64;
        let spill_secs = output_bytes as f64
            / (cluster.disk_bytes_per_sec * self.spill_bandwidth_fraction)
            * spill_passes;

        MapCost {
            overhead_secs: self.task_overhead_secs,
            read_secs,
            cpu_secs,
            spill_secs,
            output_bytes,
            output_records,
        }
    }

    /// Solo cost of one reduce task that receives `shuffle_bytes` of map
    /// output produced by `num_map_tasks` mappers.
    pub fn reduce_cost(
        &self,
        cluster: &ClusterSpec,
        job: &JobSpec,
        shuffle_bytes: u64,
        num_map_tasks: usize,
    ) -> ReduceCost {
        let script = job.script;
        let shuffle_mb = shuffle_bytes as f64 / MB as f64;

        // Shuffle: the reducer pulls one segment from every map task; small
        // transfers are latency-bound, large ones bandwidth-bound.
        let per_segment_latency = 0.01;
        let shuffle_secs = shuffle_bytes as f64 / cluster.network_bytes_per_sec
            + per_segment_latency * num_map_tasks as f64;

        // Merge the num_map_tasks segments in passes of io.sort.factor.
        let passes = Self::merge_passes(num_map_tasks, job.io_sort_factor) as f64;
        let sort_secs = shuffle_bytes as f64
            / (cluster.disk_bytes_per_sec * self.spill_bandwidth_fraction)
            * passes;

        let cpu_secs = shuffle_mb * script.reduce_cpu_sec_per_mb() / cluster.cpu_speed;

        let output_bytes = (shuffle_bytes as f64 * script.reduce_output_ratio()) as u64;
        let write_secs = output_bytes as f64 / cluster.disk_bytes_per_sec;

        ReduceCost {
            overhead_secs: self.task_overhead_secs,
            shuffle_secs,
            sort_secs,
            cpu_secs,
            write_secs,
            shuffle_bytes,
            output_bytes,
        }
    }

    /// The contention multiplier for a task sharing its instance with
    /// `concurrent_tasks - 1` other tasks.
    pub fn contention_multiplier(cluster: &ClusterSpec, concurrent_tasks: usize) -> f64 {
        let others = concurrent_tasks.saturating_sub(1) as f64;
        1.0 + cluster.contention_per_task * others
    }
}

/// Convenience: the script of a job, re-exported so callers do not need to
/// reach into the spec.
pub fn script_of(job: &JobSpec) -> PigScript {
    job.script
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GB;

    fn cluster() -> ClusterSpec {
        ClusterSpec::default()
    }

    #[test]
    fn merge_passes_monotone_in_segments_and_factor() {
        assert_eq!(CostModel::merge_passes(1, 10), 1);
        assert_eq!(CostModel::merge_passes(10, 10), 1);
        assert_eq!(CostModel::merge_passes(11, 10), 2);
        assert_eq!(CostModel::merge_passes(101, 10), 3);
        assert_eq!(CostModel::merge_passes(101, 100), 2);
        assert!(CostModel::merge_passes(256, 10) >= CostModel::merge_passes(256, 50));
    }

    #[test]
    fn map_cost_scales_with_block_size() {
        let model = CostModel::default();
        let small = JobSpec {
            input_bytes: GB,
            dfs_block_size: 64 * MB,
            ..JobSpec::default()
        };
        let large = JobSpec {
            input_bytes: GB,
            dfs_block_size: 256 * MB,
            ..JobSpec::default()
        };
        let c_small = model.map_cost(&cluster(), &small, 0);
        let c_large = model.map_cost(&cluster(), &large, 0);
        assert!(c_large.total_secs() > c_small.total_secs());
        // Excluding the fixed overhead the ratio should be roughly 4x.
        let ratio = (c_large.total_secs() - model.task_overhead_secs)
            / (c_small.total_secs() - model.task_overhead_secs);
        assert!((3.0..5.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn groupby_maps_are_slower_than_filter_maps() {
        let model = CostModel::default();
        let filter = JobSpec {
            script: PigScript::SimpleFilter,
            ..JobSpec::default()
        };
        let groupby = JobSpec {
            script: PigScript::SimpleGroupBy,
            ..JobSpec::default()
        };
        assert!(
            model.map_cost(&cluster(), &groupby, 0).cpu_secs
                > model.map_cost(&cluster(), &filter, 0).cpu_secs
        );
    }

    #[test]
    fn small_io_sort_factor_slows_reduces() {
        let model = CostModel::default();
        let fast = JobSpec {
            io_sort_factor: 100,
            ..JobSpec::default()
        };
        let slow = JobSpec {
            io_sort_factor: 10,
            ..JobSpec::default()
        };
        let many_maps = 180;
        let fast_cost = model.reduce_cost(&cluster(), &fast, 200 * MB, many_maps);
        let slow_cost = model.reduce_cost(&cluster(), &slow, 200 * MB, many_maps);
        assert!(slow_cost.sort_secs > fast_cost.sort_secs);
        assert!(slow_cost.total_secs() > fast_cost.total_secs());
    }

    #[test]
    fn contention_multiplier_grows_with_load() {
        let c = cluster();
        assert_eq!(CostModel::contention_multiplier(&c, 0), 1.0);
        assert_eq!(CostModel::contention_multiplier(&c, 1), 1.0);
        let two = CostModel::contention_multiplier(&c, 2);
        let four = CostModel::contention_multiplier(&c, 4);
        assert!(two > 1.0);
        assert!(four > two);
    }

    #[test]
    fn reduce_output_shrinks_for_groupby() {
        let model = CostModel::default();
        let groupby = JobSpec {
            script: PigScript::SimpleGroupBy,
            ..JobSpec::default()
        };
        let cost = model.reduce_cost(&cluster(), &groupby, 100 * MB, 10);
        assert!(cost.output_bytes < cost.shuffle_bytes / 10);
    }

    #[test]
    fn costs_are_positive_and_finite() {
        let model = CostModel::default();
        let job = JobSpec::default();
        let map = model.map_cost(&cluster(), &job, 0);
        assert!(map.total_secs().is_finite() && map.total_secs() > 0.0);
        let red = model.reduce_cost(&cluster(), &job, 64 * MB, job.num_map_tasks());
        assert!(red.total_secs().is_finite() && red.total_secs() > 0.0);
        assert_eq!(script_of(&job), PigScript::SimpleFilter);
    }
}
