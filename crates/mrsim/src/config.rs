//! Cluster and job configuration.

use crate::pig::PigScript;
use crate::{GB, MB};
use serde::{Deserialize, Serialize};

/// Static description of the simulated cluster.
///
/// The defaults mirror the EC2 setup of the paper: every instance has two
/// cores and can run two concurrent map tasks and two concurrent reduce
/// tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of virtual machines.
    pub num_instances: usize,
    /// CPU cores per instance.
    pub cores_per_instance: usize,
    /// Concurrent map tasks per instance.
    pub map_slots_per_instance: usize,
    /// Concurrent reduce tasks per instance.
    pub reduce_slots_per_instance: usize,
    /// Sequential disk bandwidth per instance, bytes per second.
    pub disk_bytes_per_sec: f64,
    /// Network bandwidth per instance, bytes per second.
    pub network_bytes_per_sec: f64,
    /// Relative CPU speed (1.0 = the reference instance type).
    pub cpu_speed: f64,
    /// Physical memory per instance in bytes.
    pub memory_bytes: u64,
    /// Additional slowdown applied to a task for every other task running on
    /// the same instance (memory/disk contention).  0.30 means two
    /// co-located tasks each run 30% slower than a lone task — the
    /// mechanism behind the paper's "WhyLastTaskFaster" query.
    pub contention_per_task: f64,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            num_instances: 8,
            cores_per_instance: 2,
            map_slots_per_instance: 2,
            reduce_slots_per_instance: 2,
            disk_bytes_per_sec: 80.0 * MB as f64,
            network_bytes_per_sec: 60.0 * MB as f64,
            cpu_speed: 1.0,
            memory_bytes: 7 * GB + GB / 2,
            contention_per_task: 0.30,
        }
    }
}

impl ClusterSpec {
    /// A cluster with the given number of instances and default hardware.
    pub fn with_instances(num_instances: usize) -> Self {
        ClusterSpec {
            num_instances,
            ..ClusterSpec::default()
        }
    }

    /// Total number of map slots in the cluster.
    pub fn total_map_slots(&self) -> usize {
        self.num_instances * self.map_slots_per_instance
    }

    /// Total number of reduce slots in the cluster.
    pub fn total_reduce_slots(&self) -> usize {
        self.num_instances * self.reduce_slots_per_instance
    }
}

/// Configuration of one MapReduce (Pig) job submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable job name.
    pub name: String,
    /// Which Pig script the job runs.
    pub script: PigScript,
    /// Total input size in bytes.
    pub input_bytes: u64,
    /// Number of records in the input.
    pub input_records: u64,
    /// `dfs.block.size`: input split size in bytes.
    pub dfs_block_size: u64,
    /// `mapred.reduce.tasks` is derived as
    /// `ceil(reduce_tasks_factor * num_instances)`, as in the paper.
    pub reduce_tasks_factor: f64,
    /// `io.sort.factor`: number of on-disk segments merged at a time.
    pub io_sort_factor: u32,
    /// Simulated submit time (seconds since the epoch of the trace).
    pub submit_time: f64,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: "pig-job".to_string(),
            script: PigScript::SimpleFilter,
            input_bytes: (1.3 * GB as f64) as u64,
            input_records: 13_000_000,
            dfs_block_size: 64 * MB,
            reduce_tasks_factor: 1.0,
            io_sort_factor: 10,
            submit_time: 0.0,
        }
    }
}

impl JobSpec {
    /// Number of map tasks: one per input block.
    pub fn num_map_tasks(&self) -> usize {
        if self.input_bytes == 0 {
            return 1;
        }
        self.input_bytes.div_ceil(self.dfs_block_size).max(1) as usize
    }

    /// Number of reduce tasks for a cluster of `num_instances` machines.
    pub fn num_reduce_tasks(&self, num_instances: usize) -> usize {
        ((self.reduce_tasks_factor * num_instances as f64).round() as usize).max(1)
    }

    /// Bytes processed by map task `index` (the last block may be short).
    pub fn block_bytes(&self, index: usize) -> u64 {
        let full_blocks = self.input_bytes / self.dfs_block_size;
        if (index as u64) < full_blocks {
            self.dfs_block_size
        } else {
            let remainder = self.input_bytes % self.dfs_block_size;
            if remainder == 0 {
                self.dfs_block_size
            } else {
                remainder
            }
        }
    }

    /// Records in map task `index`, proportional to its block size.
    pub fn block_records(&self, index: usize) -> u64 {
        if self.input_bytes == 0 {
            return 0;
        }
        let share = self.block_bytes(index) as f64 / self.input_bytes as f64;
        (self.input_records as f64 * share).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_task_count_follows_block_size() {
        let spec = JobSpec {
            input_bytes: (1.3 * GB as f64) as u64,
            dfs_block_size: 64 * MB,
            ..JobSpec::default()
        };
        // 1.3 GB / 64 MB = 20.8 -> 21 map tasks.
        assert_eq!(spec.num_map_tasks(), 21);

        let big_blocks = JobSpec {
            dfs_block_size: GB,
            ..spec
        };
        assert_eq!(big_blocks.num_map_tasks(), 2);
    }

    #[test]
    fn paper_motivating_example_block_counts() {
        // Section 2.1: 32 GB with 128 MB blocks -> 256 blocks; 1 GB -> 8.
        let large = JobSpec {
            input_bytes: 32 * GB,
            dfs_block_size: 128 * MB,
            ..JobSpec::default()
        };
        assert_eq!(large.num_map_tasks(), 256);
        let small = JobSpec {
            input_bytes: GB,
            dfs_block_size: 128 * MB,
            ..JobSpec::default()
        };
        assert_eq!(small.num_map_tasks(), 8);
    }

    #[test]
    fn reduce_task_count_scales_with_factor() {
        let spec = JobSpec {
            reduce_tasks_factor: 1.5,
            ..JobSpec::default()
        };
        // Paper example: 8 instances, factor 1.5 -> 12 reduce tasks.
        assert_eq!(spec.num_reduce_tasks(8), 12);
        assert_eq!(spec.num_reduce_tasks(1), 2);
        let one = JobSpec {
            reduce_tasks_factor: 1.0,
            ..JobSpec::default()
        };
        assert_eq!(one.num_reduce_tasks(16), 16);
    }

    #[test]
    fn last_block_is_short() {
        let spec = JobSpec {
            input_bytes: 130 * MB,
            dfs_block_size: 64 * MB,
            input_records: 1_300,
            ..JobSpec::default()
        };
        assert_eq!(spec.num_map_tasks(), 3);
        assert_eq!(spec.block_bytes(0), 64 * MB);
        assert_eq!(spec.block_bytes(1), 64 * MB);
        assert_eq!(spec.block_bytes(2), 2 * MB);
        let records: u64 = (0..3).map(|i| spec.block_records(i)).sum();
        assert!((records as i64 - 1_300).abs() <= 2);
    }

    #[test]
    fn cluster_slot_totals() {
        let spec = ClusterSpec::with_instances(16);
        assert_eq!(spec.total_map_slots(), 32);
        assert_eq!(spec.total_reduce_slots(), 32);
    }

    #[test]
    fn zero_input_degenerates_gracefully() {
        let spec = JobSpec {
            input_bytes: 0,
            input_records: 0,
            ..JobSpec::default()
        };
        assert_eq!(spec.num_map_tasks(), 1);
        assert_eq!(spec.block_records(0), 0);
    }
}
