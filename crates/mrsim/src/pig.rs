//! Models of the two Pig scripts used in the paper's evaluation.
//!
//! * `simple-filter.pig` loads the Excite query log, filters out queries
//!   whose query string is a URL and stores the rest.  It is map-heavy with
//!   a high selectivity and an almost pass-through reduce phase.
//! * `simple-groupby.pig` groups the queries by user and outputs the number
//!   of queries per user.  Its map output is smaller (only user/count pairs)
//!   but the reduce phase does real aggregation work.
//!
//! Only the coefficients that drive the cost model and the counters are
//! modelled; the scripts' actual semantics are exercised by the workload
//! generator in `perfxplain-workload` when it derives record counts and
//! selectivities from the synthetic Excite data.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The Pig script a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PigScript {
    /// `simple-filter.pig`: keep queries that are not URLs.
    SimpleFilter,
    /// `simple-groupby.pig`: count queries per user.
    SimpleGroupBy,
}

impl PigScript {
    /// The on-disk script name used in the paper and in the job features.
    pub fn file_name(&self) -> &'static str {
        match self {
            PigScript::SimpleFilter => "simple-filter.pig",
            PigScript::SimpleGroupBy => "simple-groupby.pig",
        }
    }

    /// All modelled scripts.
    pub fn all() -> [PigScript; 2] {
        [PigScript::SimpleFilter, PigScript::SimpleGroupBy]
    }

    /// Fraction of input *records* that survive the map phase.
    pub fn map_selectivity(&self) -> f64 {
        match self {
            // Roughly 85% of Excite queries are not URLs.
            PigScript::SimpleFilter => 0.85,
            // GroupBy emits one (user, 1) pair per input record.
            PigScript::SimpleGroupBy => 1.0,
        }
    }

    /// Ratio of map-output bytes (data that must be shuffled to reducers) to
    /// map-input bytes.  The filter script is effectively map-only: Pig
    /// stores the surviving records straight from the map tasks and only a
    /// small remainder flows through the reduce stage.
    pub fn map_output_ratio(&self) -> f64 {
        match self {
            PigScript::SimpleFilter => 0.12,
            // One (user, 1) pair per record must be shuffled for grouping.
            PigScript::SimpleGroupBy => 0.35,
        }
    }

    /// CPU seconds needed to apply the map logic to one megabyte of input on
    /// the reference instance.
    pub fn map_cpu_sec_per_mb(&self) -> f64 {
        match self {
            PigScript::SimpleFilter => 0.055,
            PigScript::SimpleGroupBy => 0.070,
        }
    }

    /// CPU seconds needed to apply the reduce logic to one megabyte of
    /// shuffled data on the reference instance.
    pub fn reduce_cpu_sec_per_mb(&self) -> f64 {
        match self {
            // Filter's reduce stage only stores records.
            PigScript::SimpleFilter => 0.015,
            // GroupBy aggregates counts per user.
            PigScript::SimpleGroupBy => 0.060,
        }
    }

    /// Ratio of job-output bytes to reduce-input bytes.
    pub fn reduce_output_ratio(&self) -> f64 {
        match self {
            PigScript::SimpleFilter => 1.0,
            // One (user, count) line per distinct user.
            PigScript::SimpleGroupBy => 0.04,
        }
    }

    /// Whether the script needs a real shuffle (group-by does; a pure filter
    /// mostly forwards data but Pig still schedules the reduce stage).
    pub fn shuffle_heavy(&self) -> bool {
        matches!(self, PigScript::SimpleGroupBy)
    }
}

impl fmt::Display for PigScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.file_name())
    }
}

/// Error returned when a script name cannot be resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScript(pub String);

impl fmt::Display for UnknownScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown pig script '{}'", self.0)
    }
}

impl std::error::Error for UnknownScript {}

impl FromStr for PigScript {
    type Err = UnknownScript;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "simple-filter.pig" | "simple-filter" | "filter" => Ok(PigScript::SimpleFilter),
            "simple-groupby.pig" | "simple-groupby" | "groupby" => Ok(PigScript::SimpleGroupBy),
            other => Err(UnknownScript(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for script in PigScript::all() {
            let parsed: PigScript = script.file_name().parse().unwrap();
            assert_eq!(parsed, script);
            assert_eq!(script.to_string(), script.file_name());
        }
        assert!("mystery.pig".parse::<PigScript>().is_err());
    }

    #[test]
    fn short_names_parse() {
        assert_eq!(
            "filter".parse::<PigScript>().unwrap(),
            PigScript::SimpleFilter
        );
        assert_eq!(
            "groupby".parse::<PigScript>().unwrap(),
            PigScript::SimpleGroupBy
        );
    }

    #[test]
    fn groupby_shuffles_more_but_outputs_less() {
        assert!(
            PigScript::SimpleGroupBy.map_output_ratio()
                > PigScript::SimpleFilter.map_output_ratio()
        );
        assert!(
            PigScript::SimpleGroupBy.reduce_output_ratio()
                < PigScript::SimpleFilter.reduce_output_ratio()
        );
    }

    #[test]
    fn groupby_is_heavier_on_cpu() {
        assert!(
            PigScript::SimpleGroupBy.map_cpu_sec_per_mb()
                > PigScript::SimpleFilter.map_cpu_sec_per_mb()
        );
        assert!(
            PigScript::SimpleGroupBy.reduce_cpu_sec_per_mb()
                > PigScript::SimpleFilter.reduce_cpu_sec_per_mb()
        );
        assert!(PigScript::SimpleGroupBy.shuffle_heavy());
        assert!(!PigScript::SimpleFilter.shuffle_heavy());
    }

    #[test]
    fn ratios_are_sane() {
        for script in PigScript::all() {
            assert!(script.map_selectivity() > 0.0 && script.map_selectivity() <= 1.0);
            assert!(script.map_output_ratio() > 0.0 && script.map_output_ratio() <= 1.0);
            assert!(script.reduce_output_ratio() > 0.0 && script.reduce_output_ratio() <= 1.0);
        }
    }
}
