//! The virtual machines of the simulated cluster.

use serde::{Deserialize, Serialize};

/// One simulated EC2-style instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Index within the cluster (0-based).
    pub index: usize,
    /// Hostname in the style the paper's logs show
    /// (`domU-12-31-39-xx.compute-1.internal`).
    pub hostname: String,
    /// Hadoop task-tracker name for this instance.
    pub tracker_name: String,
    /// Boot time of the instance (seconds before the trace epoch), reported
    /// by Ganglia's `boottime` metric.
    pub boot_time: f64,
}

impl Instance {
    /// Creates the `index`-th instance of a cluster.  `cluster_seed`
    /// diversifies hostnames and boot times across clusters so that
    /// instance-level features differ between jobs run on different
    /// clusters.
    pub fn new(index: usize, cluster_seed: u64) -> Self {
        let a = ((cluster_seed >> 8) & 0xff) as u8;
        let b = (cluster_seed & 0xff) as u8;
        let hostname = format!(
            "domU-12-31-39-{:02X}-{:02X}-{:02X}.compute-1.internal",
            a, b, index as u8
        );
        let tracker_name = format!("tracker_{hostname}:localhost/127.0.0.1:{}", 40000 + index);
        // Instances booted a few hours before the experiment started.
        let boot_time = -(3600.0 * 4.0) - (cluster_seed % 1000) as f64 - index as f64 * 17.0;
        Instance {
            index,
            hostname,
            tracker_name,
            boot_time,
        }
    }

    /// Builds the full set of instances of a cluster.
    pub fn fleet(count: usize, cluster_seed: u64) -> Vec<Instance> {
        (0..count).map(|i| Instance::new(i, cluster_seed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostnames_are_unique_within_a_cluster() {
        let fleet = Instance::fleet(16, 0xBEEF);
        let mut names: Vec<&str> = fleet.iter().map(|i| i.hostname.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn different_clusters_get_different_hostnames() {
        let a = Instance::new(0, 1);
        let b = Instance::new(0, 2);
        assert_ne!(a.hostname, b.hostname);
        assert_ne!(a.boot_time, b.boot_time);
    }

    #[test]
    fn tracker_name_embeds_hostname() {
        let inst = Instance::new(3, 7);
        assert!(inst.tracker_name.contains(&inst.hostname));
        assert!(inst.tracker_name.starts_with("tracker_"));
    }

    #[test]
    fn boot_time_is_before_epoch() {
        assert!(Instance::new(0, 99).boot_time < 0.0);
    }
}
