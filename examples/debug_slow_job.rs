//! The paper's motivating scenario (Section 2.1): a user runs a Pig job on a
//! 32 GB dataset in a 150-machine cluster (30 minutes), then re-runs it on a
//! 1 GB sample hoping for a fast debug cycle — and it *still* takes just as
//! long.  Why?
//!
//! The example simulates that situation, collects the Hadoop/Ganglia logs of
//! a handful of related runs, and asks PerfXplain the PXQL query
//!
//! ```text
//! DESPITE inputsize_compare = GT
//! OBSERVED duration_compare = SIM
//! EXPECTED duration_compare = GT
//! ```
//!
//! The expected explanation is the one from the paper: the block size is
//! large (so the 1 GB input becomes only 8 map tasks) and the cluster is big
//! (so neither job ever saturates it) — the runtime is simply the time to
//! process one block.
//!
//! Run with `cargo run --release --example debug_slow_job`.

use mrsim::{GB, MB};
use perfxplain::prelude::*;
use perfxplain::BoundQuery;

fn main() {
    // ------------------------------------------------------------------
    // 1. Simulate the workload history the user's cluster accumulated:
    //    filter jobs over small and large datasets, with different block
    //    sizes and cluster sizes.
    // ------------------------------------------------------------------
    println!("simulating the cluster history...");
    let mut traces = Vec::new();
    let mut seed = 100u64;
    for &instances in &[8usize, 150] {
        for &input_gb in &[1u64, 8, 32] {
            for &block_mb in &[64u64, 128, 1024] {
                let mut cluster = Cluster::new(ClusterSpec::with_instances(instances), seed);
                seed += 1;
                traces.push(cluster.run_job(JobSpec {
                    name: format!("filter-{input_gb}gb-{block_mb}mb-{instances}inst"),
                    script: PigScript::SimpleFilter,
                    input_bytes: input_gb * GB,
                    input_records: input_gb * 10_000_000,
                    dfs_block_size: block_mb * MB,
                    reduce_tasks_factor: 1.0,
                    io_sort_factor: 100,
                    submit_time: 0.0,
                }));
            }
        }
    }

    // The two runs the user is puzzled about: a 32 GB job and its 1 GB
    // sample with the same block size on the 150-instance cluster — where,
    // against all intuition, the sample ran just about as long (within the
    // 10% similarity band of PXQL's `duration_compare = SIM`).
    let (slow_big, same_small, block_mb) = [1024u64, 128, 64]
        .iter()
        .find_map(|&block_mb| {
            let run = |bytes: u64| {
                traces.iter().find(|t| {
                    t.spec.input_bytes == bytes
                        && t.spec.dfs_block_size == block_mb * MB
                        && t.cluster.num_instances == 150
                })
            };
            let (big, small) = (run(32 * GB)?, run(GB)?);
            let ratio = big.duration() / small.duration().max(1e-9);
            (0.9..=1.1)
                .contains(&ratio)
                .then_some((big, small, block_mb))
        })
        .expect("some block size shows the paper's plateau behaviour");
    println!(
        "  with {block_mb} MB blocks: 32 GB job took {:.0} s, 1 GB job took {:.0} s — \
         the user expected a big speed-up!\n",
        slow_big.duration(),
        same_small.duration()
    );

    // ------------------------------------------------------------------
    // 2. Collect the Hadoop job-history + Ganglia logs into an execution
    //    log.
    // ------------------------------------------------------------------
    let log = collect_traces(&traces).expect("simulated logs parse");
    println!(
        "collected {} jobs / {} tasks into the execution log\n",
        log.jobs().count(),
        log.tasks().count()
    );

    // ------------------------------------------------------------------
    // 3. Pose the PXQL query and explain.
    // ------------------------------------------------------------------
    let query = parse_query(
        "FOR J1, J2 WHERE J1.JobID = ? AND J2.JobID = ?\n\
         DESPITE inputsize_compare = GT\n\
         OBSERVED duration_compare = SIM\n\
         EXPECTED duration_compare = GT",
    )
    .unwrap();
    let bound = BoundQuery::new(query, &slow_big.job_id, &same_small.job_id);
    println!("query:\n{}\n", bound.query);

    let service = XplainService::with_config(log, ExplainConfig::default().with_width(2));
    let outcome = service
        .explain(&QueryRequest::bound(bound).with_assessment())
        .expect("explanation");
    println!("PerfXplain says:\n{}\n", outcome.explanation);

    let quality = outcome.quality.expect("assessment was requested");
    println!(
        "precision {:.2} / generality {:.2} over the related pairs",
        quality.precision.unwrap_or(f64::NAN),
        quality.generality.unwrap_or(f64::NAN),
    );
    println!(
        "\ninterpretation: with {block_mb} MB blocks the 1 GB input is split into only a\n\
         handful of map tasks, and on a large cluster both jobs are bottlenecked\n\
         by the time to process a single block — reduce the block size (or debug\n\
         locally) to get a faster debug cycle."
    );
}
