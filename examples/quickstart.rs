//! Quickstart: build an execution log, stand up the query service, ask
//! PXQL queries, print the explanations.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use perfxplain::prelude::*;
use std::time::Instant;

fn main() {
    // 1. A log of past executions.  In a real deployment this comes from the
    //    Hadoop job-history and Ganglia dumps of your cluster; here we
    //    simulate a small parameter sweep (the Table-2 grid of the paper,
    //    reduced) and collect the logs it produces.
    println!("building the execution log (simulated sweep)...");
    let log = build_execution_log(LogPreset::Tiny, 42);
    println!(
        "  {} jobs, {} tasks, {} job features, {} task features\n",
        log.jobs().count(),
        log.tasks().count(),
        log.job_catalog().len(),
        log.task_catalog().len()
    );

    // 2. A performance question about a pair of jobs, in PXQL:
    //    "Despite running the same script on the same number of instances,
    //     J1 was much slower than J2.  I expected similar durations.  Why?"
    let binding = why_slower_despite_same_num_instances(&log)
        .expect("the log contains a pair of jobs with this behaviour");
    println!("query ({}):\n{}\n", binding.name, binding.bound.query);
    let slow = log.get(&binding.bound.left_id).unwrap();
    let fast = log.get(&binding.bound.right_id).unwrap();
    println!(
        "pair of interest: {} ({:.0} s) vs {} ({:.0} s)\n",
        slow.id,
        slow.duration().unwrap_or(0.0),
        fast.id,
        fast.duration().unwrap_or(0.0)
    );

    // 3. Stand up the query service and ask.  One call parses/binds the
    //    query, generates the explanation, narrates it in plain English and
    //    scores it over the related pairs (Definitions 4-6 of the paper).
    let service = XplainService::new(log);
    let request = QueryRequest::bound(binding.bound.clone())
        .with_narration()
        .with_assessment();
    let started = Instant::now();
    let outcome = service.explain(&request).expect("explanation succeeds");
    let first_query = started.elapsed();
    println!("explanation:\n{}\n", outcome.explanation);
    println!(
        "in plain English: {}\n",
        outcome.narration.as_deref().unwrap_or_default()
    );
    let quality = outcome.quality.expect("assessment was requested");
    println!(
        "quality over the related pairs: precision {:.2}, generality {:.2}, relevance {:.2}",
        quality.precision.unwrap_or(f64::NAN),
        quality.generality.unwrap_or(f64::NAN),
        quality.relevance.unwrap_or(f64::NAN),
    );

    // 4. The session continues: follow-up queries reuse the cached columnar
    //    view of the log instead of re-encoding it (on logs of real size
    //    that is the dominant cost — see the service_reuse scenario in
    //    BENCH_pairs.json).
    let started = Instant::now();
    let repeat = service.explain(&request).expect("explanation succeeds");
    let second_query = started.elapsed();
    assert!(repeat.view_reused);
    assert_eq!(repeat.explanation, outcome.explanation);
    println!(
        "\nfirst query (encodes the log): {:.1} ms; follow-up (cached view): {:.1} ms",
        first_query.as_secs_f64() * 1e3,
        second_query.as_secs_f64() * 1e3,
    );
}
