//! Quickstart: build an execution log, ask a PXQL query, print the
//! explanation.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use perfxplain::prelude::*;
use perfxplain::{assess, narrate, prepare_training_set};

fn main() {
    // 1. A log of past executions.  In a real deployment this comes from the
    //    Hadoop job-history and Ganglia dumps of your cluster; here we
    //    simulate a small parameter sweep (the Table-2 grid of the paper,
    //    reduced) and collect the logs it produces.
    println!("building the execution log (simulated sweep)...");
    let log = build_execution_log(LogPreset::Tiny, 42);
    println!(
        "  {} jobs, {} tasks, {} job features, {} task features\n",
        log.jobs().count(),
        log.tasks().count(),
        log.job_catalog().len(),
        log.task_catalog().len()
    );

    // 2. A performance question about a pair of jobs, in PXQL:
    //    "Despite running the same script on the same number of instances,
    //     J1 was much slower than J2.  I expected similar durations.  Why?"
    let binding = why_slower_despite_same_num_instances(&log)
        .expect("the log contains a pair of jobs with this behaviour");
    println!("query ({}):\n{}\n", binding.name, binding.bound.query);
    let slow = log.get(&binding.bound.left_id).unwrap();
    let fast = log.get(&binding.bound.right_id).unwrap();
    println!(
        "pair of interest: {} ({:.0} s) vs {} ({:.0} s)\n",
        slow.id,
        slow.duration().unwrap_or(0.0),
        fast.id,
        fast.duration().unwrap_or(0.0)
    );

    // 3. Ask PerfXplain.
    let config = ExplainConfig::default();
    let engine = PerfXplain::new(config.clone());
    let explanation = engine
        .explain(&log, &binding.bound)
        .expect("explanation generation succeeds");
    println!("explanation:\n{explanation}\n");
    println!(
        "in plain English: {}\n",
        narrate(&binding.bound, &explanation)
    );

    // 4. How good is it?  Relevance / precision / generality over the
    //    related pairs of the log (Definitions 4-6 of the paper).
    let related = prepare_training_set(&log, &binding.bound, &config).expect("related pairs exist");
    let quality = assess(&related, &explanation);
    println!(
        "quality on {} related pairs: precision {:.2}, generality {:.2}, relevance {:.2}",
        related.len(),
        quality.precision.unwrap_or(f64::NAN),
        quality.generality.unwrap_or(f64::NAN),
        quality.relevance.unwrap_or(f64::NAN),
    );
}
