//! Task-level debugging: why was the last map task of a job faster than its
//! siblings?
//!
//! This is the paper's *WhyLastTaskFaster* query (and, as the authors note,
//! the puzzle they themselves hit while collecting their data).  The example
//! also demonstrates PerfXplain's handling of *under-specified* queries: the
//! user first asks without any DESPITE clause and PerfXplain generates one
//! automatically (Section 6.4), then produces the because clause within that
//! context.
//!
//! Run with `cargo run --release --example task_skew_investigation`.

use perfxplain::prelude::*;
use perfxplain::{prepare_training_set, relevance, BoundQuery};
use pxql::Predicate;

fn main() {
    println!("building the execution log (simulated sweep)...");
    let log = build_execution_log(LogPreset::Tiny, 7);
    println!(
        "  {} jobs / {} tasks\n",
        log.jobs().count(),
        log.tasks().count()
    );

    // The well-specified query, as in Section 6.2 of the paper.
    let binding = why_last_task_faster(&log).expect("the last-task pattern exists in the log");
    let fast = log.get(&binding.bound.left_id).unwrap();
    let slow = log.get(&binding.bound.right_id).unwrap();
    println!(
        "pair of interest (same job, same instance, similar input):\n  {} finished in {:.1} s\n  {} finished in {:.1} s\n",
        fast.id,
        fast.duration().unwrap_or(0.0),
        slow.id,
        slow.duration().unwrap_or(0.0)
    );

    let config = ExplainConfig::default();
    let engine = PerfXplain::new(config.clone());

    println!("--- well-specified query -------------------------------------");
    println!("{}\n", binding.bound.query);
    let explanation = engine.explain(&log, &binding.bound).expect("explanation");
    println!("explanation:\n{explanation}\n");

    // The under-specified variant: drop the DESPITE clause entirely and let
    // PerfXplain recover it.
    println!("--- under-specified query (no DESPITE clause) -----------------");
    let underspecified = BoundQuery::new(
        parse_query(
            "FOR T1, T2 WHERE T1.TaskID = ? AND T2.TaskID = ?\n\
             OBSERVED duration_compare = LT\n\
             EXPECTED duration_compare = SIM",
        )
        .unwrap(),
        &binding.bound.left_id,
        &binding.bound.right_id,
    );
    let related = prepare_training_set(&log, &underspecified, &config).expect("related pairs");
    let relevance_before = relevance(&related, &Predicate::always_true()).unwrap_or(0.0);

    let (full, extended_query) = engine
        .explain_full(&log, &underspecified)
        .expect("explanation with generated despite clause");
    let relevance_after = relevance(&related, &full.despite).unwrap_or(0.0);

    println!("generated DESPITE clause: {}", full.despite);
    println!("extended query despite  : {}", extended_query.query.despite);
    println!(
        "relevance: {relevance_before:.2} with the empty despite clause -> {relevance_after:.2} with the generated one\n"
    );
    println!("full explanation:\n{full}");
}
