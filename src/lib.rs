//! PerfXplain — explain the relative performance of MapReduce jobs and
//! tasks.
//!
//! This is the facade crate of the workspace: it re-exports the public API
//! of every component so that applications (and the examples and integration
//! tests of this repository) only need a single dependency.
//!
//! | component | crate | what it provides |
//! |---|---|---|
//! | explanation engine | [`perfxplain_core`] | execution-log data model, PXQL binding, pair features, metrics, Algorithm 1, baselines, evaluation harness |
//! | query language | [`pxql`] | values, predicates, parser for PXQL |
//! | ML primitives | [`mlcore`] | entropy, C4.5-style splits, decision trees, Relief, balanced sampling |
//! | cluster simulator | [`mrsim`] | discrete-event MapReduce cluster with a Ganglia-style monitor |
//! | log substrate | [`hadoop_logs`] | Hadoop job-history / job.xml / Ganglia dump writer, parser and feature collector |
//! | workloads | [`workload`] | Excite-like data generator, the Table-2 grid, sweep driver and the paper's two queries |
//!
//! # Quickstart
//!
//! ```no_run
//! use perfxplain::prelude::*;
//!
//! // 1. Produce an execution log (here: simulate a small parameter sweep and
//! //    collect the Hadoop/Ganglia logs it leaves behind).
//! let log = build_execution_log(LogPreset::Tiny, 42);
//!
//! // 2. Pose a PXQL query about a pair of executions.
//! let binding = why_slower_despite_same_num_instances(&log).expect("pair of interest");
//!
//! // 3. Ask PerfXplain for an explanation.
//! let engine = PerfXplain::new(ExplainConfig::default());
//! let explanation = engine.explain(&log, &binding.bound).unwrap();
//! println!("{explanation}");
//! ```

pub use perfxplain_core::{
    assess, compute_pair_features, evaluate_on_log, generality, generate_explanation, narrate,
    precision, prepare_training_set, relevance, split_log, train_test_round, Aggregate, BoundQuery,
    CoreError, EvaluationResult, ExecutionKind, ExecutionLog, ExecutionRecord, ExplainConfig,
    Explanation, ExplanationQuality, FeatureCatalog, FeatureDef, FeatureKind, FeatureLevel,
    MetricEstimate, PairCatalog, PairExample, PairFeatureGroup, PairLabel, PerfXplain, RuleOfThumb,
    SimButDiff, Technique, TrainingSet, DEFAULT_SIM_THRESHOLD, DURATION_FEATURE,
};

pub use hadoop_logs;
pub use mlcore;
pub use mrsim;
pub use pxql;
pub use workload;

/// Everything most applications need, importable with a single `use`.
pub mod prelude {
    pub use crate::{
        BoundQuery, ExecutionLog, ExecutionRecord, ExplainConfig, Explanation, FeatureLevel,
        PairLabel, PerfXplain, RuleOfThumb, SimButDiff, Technique,
    };
    pub use hadoop_logs::{collect_traces, JobLogBundle, LogCollector};
    pub use mrsim::{Cluster, ClusterSpec, JobSpec, PigScript};
    pub use pxql::{parse_predicate, parse_query, Predicate, Value};
    pub use workload::{
        build_execution_log, why_last_task_faster, why_slower_despite_same_num_instances, GridSpec,
        LogPreset, SweepOptions,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        // Purely a compile-time check that the re-exports resolve.
        let _ = ExplainConfig::default();
        let _ = ClusterSpec::default();
        let _ = LogPreset::Tiny;
        let _ = Technique::all();
    }
}
