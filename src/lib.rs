//! PerfXplain — explain the relative performance of MapReduce jobs and
//! tasks.
//!
//! This is the facade crate of the workspace: it re-exports the public API
//! of every component so that applications (and the examples and integration
//! tests of this repository) only need a single dependency.
//!
//! | component | crate | what it provides |
//! |---|---|---|
//! | explanation engine | [`perfxplain_core`] | execution-log data model, PXQL binding, pair features, metrics, Algorithm 1, baselines, evaluation harness |
//! | query language | [`pxql`] | values, predicates, parser for PXQL |
//! | ML primitives | [`mlcore`] | entropy, C4.5-style splits, decision trees, Relief, balanced sampling |
//! | cluster simulator | [`mrsim`] | discrete-event MapReduce cluster with a Ganglia-style monitor |
//! | log substrate | [`hadoop_logs`] | Hadoop job-history / job.xml / Ganglia dump writer, parser and feature collector |
//! | workloads | [`workload`] | Excite-like data generator, the Table-2 grid, sweep driver and the paper's two queries |
//! | network front-end | [`server`] | non-blocking TCP event loop, line-delimited JSON protocol, cost-based admission control |
//!
//! # Quickstart
//!
//! Debugging sessions are interactive: a user poses *many* PXQL queries
//! against the *same* execution log.  The [`XplainService`] is the
//! long-lived entry point for that — it caches the log's columnar encoding
//! per (generation, kind) and serves every query (concurrently, if you
//! like) from the cached view:
//!
//! ```no_run
//! use perfxplain::prelude::*;
//!
//! // 1. Produce an execution log (here: simulate a small parameter sweep and
//! //    collect the Hadoop/Ganglia logs it leaves behind).
//! let log = build_execution_log(LogPreset::Tiny, 42);
//!
//! // 2. Pose a PXQL query about a pair of executions.
//! let binding = why_slower_despite_same_num_instances(&log).expect("pair of interest");
//!
//! // 3. Stand up the query service and ask.  One call parses, binds,
//! //    explains, narrates and scores; repeated queries reuse the cached
//! //    columnar view instead of re-encoding the log.
//! let service = XplainService::new(log);
//! let outcome = service
//!     .explain(&QueryRequest::bound(binding.bound).with_narration())
//!     .unwrap();
//! println!("{}", outcome.explanation);
//! println!("{}", outcome.narration.unwrap());
//!
//! // New executions append while serving: cached views splice them into an
//! // O(tail) append segment instead of re-encoding the log.  Any other
//! // mutation bumps the generation and invalidates the cached views
//! // wholesale — stale answers are impossible either way.  The returned
//! // outcome says whether the append was fsynced to the write-ahead
//! // journal before the ack (`durable` — always false here, where no
//! // journal is enabled).
//! let outcome = service.append(vec![ExecutionRecord::job("job_new")]).unwrap();
//! assert!(!outcome.durable);
//! service.with_log_mut(|log| log.rebuild_catalogs());
//! ```
//!
//! For one-off questions the stateless [`PerfXplain`] engine is still
//! available (`engine.explain(&log, &bound)`); it is a thin wrapper over a
//! single-shot service pass, so both APIs share one code path.
//!
//! # Scaling to large logs
//!
//! Million-record logs load and encode as **shards**, end to end, the
//! encoded form **persists**, and a served log stays **live**: how much an
//! operation costs depends on which tier it begins from.
//!
//! * **Cold JSON/bundle ingest** — the expensive tier, paid once per
//!   source change.  `hadoop_logs::collect_bundles_sharded(&bundles,
//!   shards)` parses job log bundles on concurrent threads and merges the
//!   per-shard logs ([`ExecutionLog::from_shards`] /
//!   [`ExecutionLog::extend_parallel`](perfxplain_core::ExecutionLog::extend_parallel))
//!   into a log identical to a serial ingest; the columnar view encodes
//!   per shard with local dictionaries and merges by dictionary remapping
//!   ([`ColumnarLog::build_sharded`](perfxplain_core::ColumnarLog::build_sharded)),
//!   bit-identical to the single-shot build, auto-enabled by the
//!   [`XplainService`] above
//!   [`SHARDED_BUILD_THRESHOLD`](perfxplain_core::SHARDED_BUILD_THRESHOLD)
//!   rows.
//! * **Snapshot open** — the normal cold start.  [`snapshot::persist`]
//!   (or [`XplainService::persist`]) writes each shard's records *and its
//!   encoded column segments* as fingerprinted binary segment files;
//!   [`XplainService::open_snapshot`] rehydrates a **warm** service from
//!   them — fingerprints verified, views assembled by the same
//!   dictionary-remapping merge, no JSON, no re-encoding — so the first
//!   query hits a cached view.  Re-ingest is **incremental**
//!   ([`snapshot::sync`], CLI `perfxplain ingest --bundles <dir>
//!   --snapshot <dir>`): shards whose source fingerprint still matches the
//!   manifest are neither re-parsed nor re-encoded.  Recovery from damage
//!   is **layered**, cheapest remedy first: transient IO errors are
//!   absorbed in place by bounded-backoff retry (counted in
//!   [`SyncReport::io_retries`]); a store that fails the strict open is
//!   *salvaged* ([`snapshot::open_salvage`],
//!   [`XplainService::open_snapshot_salvage`]) — damaged segments are
//!   quarantined (renamed aside, never deleted) and the healthy shards
//!   keep serving while a targeted [`snapshot::sync`] re-encodes only the
//!   quarantined shards from source; a full re-ingest is the **last
//!   resort**, reserved for stores salvage cannot read at all (unusable
//!   manifest, version skew).  [`snapshot::verify`] (CLI `perfxplain
//!   snapshot verify`) checks every fingerprint read-only.
//! * **Warm service cache** — every later query `Arc`-shares the cached
//!   view per (log generation, kind); pair enumeration fans out over
//!   threads by default on large views (the `parallel` / `serial` crate
//!   features force it on / off), with bit-identical results either way.
//! * **Live appends** — new executions stream into a *serving* process
//!   without ever paying a re-encode.
//!   [`XplainService::append`](perfxplain_core::XplainService::append)
//!   extends the log and keeps the cached views alive: the next query
//!   splices the fresh records into a small **append-tail segment** of the
//!   cached view (dictionaries extended in place, base columns `Arc`-shared
//!   untouched), so the refresh costs O(tail), not O(log) — 50×+ cheaper
//!   than a rebuild at n = 100k, and growing with the log.  Per-kind
//!   *rewrite watermarks* keep the shortcut sound: appends that change the
//!   catalog, and every non-append mutation
//!   ([`XplainService::with_log_mut`]), move the watermark and force a full
//!   rebuild — proptest-proven bit-identical to a from-scratch encode under
//!   arbitrary interleavings.  Oversized tails fold back into their base in
//!   the background under a configurable
//!   [`CompactionPolicy`](perfxplain_core::CompactionPolicy), and
//!   [`XplainService::checkpoint`] persists the live tail as an incremental
//!   snapshot shard ([`snapshot::sync_append`]) — a checkpoint without a
//!   stop-the-world re-encode (CLI `perfxplain serve --checkpoint <dir>`).
//!   Over the wire, a `"target": "append"` request (CLI `perfxplain
//!   append`) does the same against a remote server.
//! * **Durable appends** — a snapshot directory can additionally carry a
//!   **write-ahead append journal**
//!   ([`XplainService::enable_journal`](perfxplain_core::XplainService::enable_journal),
//!   CLI `perfxplain serve --checkpoint <dir> --fsync <policy>`): every
//!   append first writes a length-prefixed, fingerprint-checksummed record
//!   frame to `journal.bin` and only then acknowledges, with the fsync
//!   cadence set by [`FsyncPolicy`] — `always` (every ack durable),
//!   `every:n` (amortized), or `oncheckpoint` (journal written, fsync
//!   deferred; within ~10% of un-journaled throughput).  The wire append
//!   response carries the `durable` verdict per batch.  On restart,
//!   [`XplainService::open_snapshot`] replays the journal after the
//!   manifest — torn or corrupt tails are **truncated at the last valid
//!   frame**, never an error, and the replayed records splice through the
//!   same delta path as live appends, so the service comes back warm with
//!   its tail already in the views.  `checkpoint` and `persist` rotate the
//!   journal atomically (new journal staged before the manifest rename,
//!   reset only after the commit), so the journal only ever describes the
//!   tail beyond the snapshot on disk.  [`verify_journal`] (CLI
//!   `perfxplain snapshot verify`) audits the frame checksums read-only,
//!   and the `status` probe reports journal bytes, frame counts, fsyncs
//!   and the last rotation generation.  Graceful shutdown (SIGINT/SIGTERM
//!   or a `shutdown` admin frame) drains in-flight requests under a
//!   bounded deadline, then takes a final checkpoint and journal fsync.
//! * **Networked serving** — [`server::spawn`] (CLI `perfxplain serve`)
//!   puts a line-delimited JSON protocol in front of a warm service: a
//!   single non-blocking event loop owns every connection while queries run
//!   on a bounded worker pool behind **cost-based admission control** —
//!   each request's cost is estimated from its compiled plan
//!   ([`XplainService::estimate_cost`]), charged against a configurable
//!   concurrent budget, queued FIFO (bounded) when the budget is held, and
//!   shed with typed `429` responses beyond that, so many concurrent
//!   debugging sessions share one log under bounded memory.  Once a query's
//!   view is built and the *actual* related-pair count is known, the charge
//!   is **refined mid-flight**: the estimate/actual difference is refunded
//!   to the budget ([`server::ChargeHandle`]), unblocking queued work early;
//!   the cumulative refund shows up in the `status` probe alongside the
//!   live-view delta stats
//!   ([`ViewCacheStats`](perfxplain_core::ViewCacheStats)).
//!
//! Every IO and dispatch layer above carries named fault-injection sites
//! ([`failpoints`], compiled in only under `--features failpoints`): the
//! chaos suite (`tests/chaos.rs`) drives random fault schedules through
//! persist/sync/open, the journal, the worker pool and the server sockets,
//! asserting the store is always openable or salvageable and that salvage
//! plus a targeted sync converges to the same views as a clean full
//! ingest.  The durability invariant is proven both ways: a crash-prefix
//! proptest truncates or bit-flips the journal at arbitrary byte offsets
//! and asserts exactly the frames before the damage are recovered, and the
//! CI crash-recovery smoke SIGKILLs a journaled server mid-append-storm
//! and asserts zero acked-durable records lost on restart.

pub use perfxplain_core::{
    assess, compute_pair_features, evaluate_on_log, generality, generate_explanation, narrate,
    precision, prepare_training_set, relevance, split_log, train_test_round, verify_journal,
    Aggregate, BoundQuery, CoreError, EvaluationResult, ExecutionKind, ExecutionLog,
    ExecutionRecord, ExplainConfig, Explanation, ExplanationQuality, FeatureCatalog, FeatureDef,
    FeatureKind, FeatureLevel, FsyncPolicy, JournalHealth, JournalStats, MetricEstimate,
    PairCatalog, PairExample, PairFeatureGroup, PairLabel, PartialSnapshot, PerfXplain, QueryInput,
    QueryOutcome, QueryRequest, RecordShard, RuleOfThumb, ShardDamage, ShardEntry, ShardHealth,
    ShardInput, SimButDiff, Snapshot, SnapshotManifest, SnapshotShard, SnapshotUsage,
    SnapshotViews, SyncReport, Technique, TrainingSet, XplainService, DEFAULT_SIM_THRESHOLD,
    DURATION_FEATURE, SNAPSHOT_VERSION,
};

// The fault-injection registry (a no-op unless the `failpoints` feature is
// armed) — re-exported so the chaos suite controls every crate's sites
// through one path.
pub use perfxplain_core::failpoints;
pub use perfxplain_core::shard;
pub use perfxplain_core::snapshot;

pub use hadoop_logs;
pub use mlcore;
pub use mrsim;
pub use pxql;
pub use workload;

pub use perfxplain_server as server;

/// Everything most applications need, importable with a single `use`.
pub mod prelude {
    pub use crate::{
        BoundQuery, ExecutionLog, ExecutionRecord, ExplainConfig, Explanation, FeatureLevel,
        PairLabel, PerfXplain, QueryOutcome, QueryRequest, RuleOfThumb, SimButDiff, Technique,
        XplainService,
    };
    pub use hadoop_logs::{
        collect_bundles, collect_bundles_sharded, collect_traces, collect_traces_sharded,
        JobLogBundle, LogCollector,
    };
    pub use mrsim::{Cluster, ClusterSpec, JobSpec, PigScript};
    pub use pxql::{parse_predicate, parse_query, Predicate, Value};
    pub use workload::{
        build_execution_log, why_last_task_faster, why_slower_despite_same_num_instances, GridSpec,
        LogPreset, SweepOptions,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_types() {
        use crate::prelude::*;
        // Purely a compile-time check that the re-exports resolve.
        let _ = ExplainConfig::default();
        let _ = ClusterSpec::default();
        let _ = LogPreset::Tiny;
        let _ = Technique::all();
    }
}
