//! The PerfXplain command-line tool.
//!
//! ```text
//! perfxplain simulate --preset small --seed 42 --out log.json
//!     Run the Table-2 workload sweep on the simulated cluster, collect the
//!     Hadoop/Ganglia logs and store the resulting execution log as JSON.
//!
//! perfxplain inspect --log log.json
//!     Summarise an execution log: jobs, tasks, features, durations.
//!
//! perfxplain queries --log log.json
//!     Find the paper's two canonical queries (WhyLastTaskFaster,
//!     WhySlowerDespiteSameNumInstances) in the log and print them together
//!     with their pairs of interest.
//!
//! perfxplain explain --log log.json --query query.pxql [--left ID --right ID]
//!                    [--width N] [--auto-despite] [--narrate] [--compare]
//!     Answer a PXQL query: generate an explanation (optionally extending
//!     the despite clause automatically), print it, score it, and optionally
//!     narrate it in plain English or compare against the baselines.
//! ```
//!
//! The query file contains a PXQL query; if its `WHERE` clause uses `?`
//! placeholders the pair of interest must be supplied with `--left`/`--right`.

use perfxplain::prelude::*;
use perfxplain::{
    assess, generate_explanation, narrate, prepare_training_set, BoundQuery, ExecutionLog,
};
use std::collections::BTreeMap;
use std::process::exit;

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    exit(1);
}

/// Minimal `--flag value` / `--switch` argument parser.
struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Self {
        let mut values = BTreeMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let arg = &raw[i];
            if let Some(name) = arg.strip_prefix("--") {
                let takes_value = matches!(
                    name,
                    "preset"
                        | "seed"
                        | "out"
                        | "log"
                        | "query"
                        | "query-text"
                        | "left"
                        | "right"
                        | "width"
                );
                if takes_value {
                    let value = raw.get(i + 1).unwrap_or_else(|| {
                        fail(&format!("--{name} expects a value"));
                    });
                    values.insert(name.to_string(), value.clone());
                    i += 1;
                } else {
                    switches.push(name.to_string());
                }
            } else {
                fail(&format!("unexpected argument '{arg}'"));
            }
            i += 1;
        }
        Args { values, switches }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn load_log(args: &Args) -> ExecutionLog {
    let path = args
        .get("log")
        .unwrap_or_else(|| fail("--log <file.json> is required"));
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    ExecutionLog::from_json(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
}

fn preset_from(args: &Args) -> LogPreset {
    match args.get("preset").unwrap_or("small") {
        "tiny" => LogPreset::Tiny,
        "small" => LogPreset::Small,
        "paper" => LogPreset::PaperGrid,
        other => fail(&format!(
            "unknown preset '{other}' (expected tiny|small|paper)"
        )),
    }
}

fn seed_from(args: &Args) -> u64 {
    args.get("seed")
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| fail("--seed expects a number"))
        })
        .unwrap_or(42)
}

fn cmd_simulate(args: &Args) {
    let preset = preset_from(args);
    let seed = seed_from(args);
    let out = args.get("out").unwrap_or("perfxplain-log.json");
    eprintln!("simulating the {preset:?} workload (seed {seed})...");
    let log = build_execution_log(preset, seed);
    let json = log.to_json().unwrap_or_else(|e| fail(&e.to_string()));
    std::fs::write(out, json).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    println!(
        "wrote {} jobs and {} tasks to {out}",
        log.jobs().count(),
        log.tasks().count()
    );
}

fn cmd_inspect(args: &Args) {
    let log = load_log(args);
    let durations: Vec<f64> = log.jobs().filter_map(|j| j.duration()).collect();
    let mean = if durations.is_empty() {
        0.0
    } else {
        durations.iter().sum::<f64>() / durations.len() as f64
    };
    println!("jobs          : {}", log.jobs().count());
    println!("tasks         : {}", log.tasks().count());
    println!("job features  : {}", log.job_catalog().len());
    println!("task features : {}", log.task_catalog().len());
    println!("mean job time : {mean:.1} s");
    let mut scripts: BTreeMap<String, usize> = BTreeMap::new();
    for job in log.jobs() {
        let script = job
            .feature("pigscript")
            .as_str()
            .unwrap_or("unknown")
            .to_string();
        *scripts.entry(script).or_default() += 1;
    }
    for (script, count) in scripts {
        println!("  {script}: {count} jobs");
    }
}

fn cmd_queries(args: &Args) {
    let log = load_log(args);
    match why_slower_despite_same_num_instances(&log) {
        Some(binding) => println!(
            "{}:\n{}\n",
            binding.name,
            binding.bound.query.clone().with_pair(
                binding.bound.left_id.clone(),
                binding.bound.right_id.clone()
            )
        ),
        None => {
            println!("WhySlowerDespiteSameNumInstances: no suitable pair of jobs in this log\n")
        }
    }
    match why_last_task_faster(&log) {
        Some(binding) => println!(
            "{}:\n{}",
            binding.name,
            binding.bound.query.clone().with_pair(
                binding.bound.left_id.clone(),
                binding.bound.right_id.clone()
            )
        ),
        None => println!("WhyLastTaskFaster: no suitable pair of tasks in this log"),
    }
}

fn cmd_explain(args: &Args) {
    let log = load_log(args);
    let query_text = if let Some(path) = args.get("query") {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read query file {path}: {e}")))
    } else if let Some(text) = args.get("query-text") {
        text.to_string()
    } else {
        fail("--query <file> or --query-text \"...\" is required");
    };
    let parsed = parse_query(&query_text).unwrap_or_else(|e| fail(&format!("invalid PXQL: {e}")));

    let bound = match (args.get("left"), args.get("right")) {
        (Some(left), Some(right)) => BoundQuery::new(parsed, left, right),
        _ => BoundQuery::from_query(parsed)
            .unwrap_or_else(|_| fail("the query uses '?' placeholders; pass --left and --right")),
    };

    let mut config = ExplainConfig::default();
    if let Some(width) = args.get("width") {
        config.width = width
            .parse()
            .unwrap_or_else(|_| fail("--width expects a number"));
    }
    let engine = PerfXplain::new(config.clone());

    let (explanation, effective_query) = if args.has("auto-despite") {
        engine
            .explain_full(&log, &bound)
            .unwrap_or_else(|e| fail(&e.to_string()))
    } else {
        (
            engine
                .explain(&log, &bound)
                .unwrap_or_else(|e| fail(&e.to_string())),
            bound.clone(),
        )
    };

    println!("{explanation}\n");
    if args.has("narrate") {
        println!("{}\n", narrate(&bound, &explanation));
    }

    let related = prepare_training_set(&log, &effective_query, &config)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let quality = assess(&related, &explanation);
    println!(
        "quality over {} related pairs: precision {:.2}, generality {:.2}, relevance {:.2}",
        related.len(),
        quality.precision.unwrap_or(f64::NAN),
        quality.generality.unwrap_or(f64::NAN),
        quality.relevance.unwrap_or(f64::NAN)
    );

    if args.has("compare") {
        println!("\nbaselines:");
        for technique in [Technique::RuleOfThumb, Technique::SimButDiff] {
            match generate_explanation(technique, &log, &bound, &config) {
                Ok(explanation) => {
                    let quality = assess(&related, &explanation);
                    println!(
                        "  {technique:<12} precision {:.2}, generality {:.2}  ({})",
                        quality.precision.unwrap_or(f64::NAN),
                        quality.generality.unwrap_or(f64::NAN),
                        explanation.because
                    );
                }
                Err(err) => println!("  {technique:<12} failed: {err}"),
            }
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        eprintln!("usage: perfxplain <simulate|inspect|queries|explain> [options]");
        eprintln!("       see the module documentation at the top of src/bin/perfxplain.rs");
        exit(2);
    };
    let args = Args::parse(rest);
    match command.as_str() {
        "simulate" => cmd_simulate(&args),
        "inspect" => cmd_inspect(&args),
        "queries" => cmd_queries(&args),
        "explain" => cmd_explain(&args),
        "--help" | "-h" | "help" => {
            println!("usage: perfxplain <simulate|inspect|queries|explain> [options]");
        }
        other => fail(&format!("unknown command '{other}'")),
    }
}
