//! The PerfXplain command-line tool.
//!
//! ```text
//! perfxplain simulate --preset small --seed 42 --out log.json
//!     Run the Table-2 workload sweep on the simulated cluster, collect the
//!     Hadoop/Ganglia logs and store the resulting execution log as JSON.
//!
//! perfxplain ingest --bundles <dir> [--out log.json] [--shards N]
//!                   [--snapshot <dir>]
//!     Ingest a directory of on-disk job log bundles (one directory per job
//!     containing job_history.log, job.xml, ganglia.csv) into an execution
//!     log.  Bundles are split into shards parsed on concurrent threads
//!     (default: one shard per core) and merged into a log identical to a
//!     serial ingest.  With --snapshot the result is persisted as a
//!     segmented binary snapshot, **incrementally**: each shard's bundles
//!     are fingerprinted and shards whose fingerprint still matches the
//!     snapshot's manifest are neither re-parsed nor re-encoded — only the
//!     dirty shards are.  Reports rows ingested, shards parsed vs skipped,
//!     and wall-clock per phase (parse / encode / persist).
//!
//! perfxplain snapshot save --log log.json --snapshot <dir> [--shards N]
//!     Convert a JSON execution log into a segmented binary snapshot
//!     (per-shard column segments + fingerprinted manifest).
//!
//! perfxplain snapshot open --snapshot <dir> [--out log.json]
//!     Open a snapshot: verify every shard fingerprint, reassemble the log
//!     and both columnar views from the stored binary columns (no JSON, no
//!     re-encode), print per-phase timings; optionally write the log back
//!     out as JSON.
//!
//! perfxplain snapshot verify --snapshot <dir>
//!     Fingerprint-check every segment without building any views: print
//!     per-shard health, audit the append journal's frame checksums when
//!     one is present, and exit non-zero if any shard or the journal is
//!     damaged.  Never modifies the store — quarantining happens only on
//!     salvage opens, torn-tail truncation only on real opens.
//!
//! perfxplain inspect --log log.json
//!     Summarise an execution log: jobs, tasks, features, durations.
//!
//! perfxplain queries --log log.json
//!     Find the paper's two canonical queries (WhyLastTaskFaster,
//!     WhySlowerDespiteSameNumInstances) in the log and print them together
//!     with their pairs of interest.
//!
//! perfxplain explain --log log.json --query query.pxql [--left ID --right ID]
//!                    [--width N] [--auto-despite] [--narrate] [--compare]
//!     Answer a PXQL query: generate an explanation (optionally extending
//!     the despite clause automatically), print it, score it, and optionally
//!     narrate it in plain English or compare against the baselines.
//!
//! perfxplain batch --log log.json --queries queries.pxqlb
//!                  [--width N] [--auto-despite] [--narrate] [--par]
//!     Answer a whole file of PXQL queries (one per line, `#` comments and
//!     blank lines ignored; each line needs literal WHERE bindings) through
//!     one long-lived XplainService, printing per-query timing so the
//!     columnar-view reuse is visible.  `--par` answers the batch across
//!     threads instead of serially.
//!
//! perfxplain serve --log log.json | --snapshot <dir>
//!                  [--addr HOST:PORT] [--workers N] [--budget UNITS]
//!                  [--queue N] [--session-inflight N] [--session-pending N]
//!                  [--timeout-ms MS] [--width N] [--checkpoint <dir>]
//!                  [--fsync always|every:N|oncheckpoint] [--drain-ms MS]
//!                  [--allow-remote-shutdown]
//!     Serve the log over the line-delimited JSON protocol: a non-blocking
//!     TCP event loop in front of a bounded worker pool with cost-based
//!     admission control (requests whose estimated cost does not fit the
//!     concurrent budget queue in a bounded FIFO; beyond that, load is shed
//!     with typed 429 responses).  `--timeout-ms 0` disables the default
//!     per-request deadline.  With --checkpoint the server persists the
//!     served log to a snapshot directory whenever records have been
//!     appended since the last checkpoint — incrementally: clean base
//!     shards are kept as-is and only the live tail is encoded, so a
//!     serving process checkpoints without a stop-the-world re-encode.
//!     With --fsync the checkpoint directory additionally carries a
//!     write-ahead append journal: every wire append is framed and
//!     checksummed into journal.bin before it is acknowledged, so a crash
//!     between checkpoints loses nothing that was acked durable.  On
//!     SIGINT/SIGTERM (or a `shutdown` admin frame) the server drains
//!     gracefully — stops accepting, finishes in-flight requests within
//!     --drain-ms (default 5000), then takes a final checkpoint and fsyncs
//!     the journal before exiting.  The `shutdown` frame is honored only
//!     from loopback connections unless --allow-remote-shutdown is set.
//!
//! perfxplain append --addr HOST:PORT --log records.json
//!     Append the records of a JSON execution log to a *running* server
//!     over the wire.  The server extends its log in place and
//!     delta-maintains the cached columnar views (the next query pays an
//!     O(tail) refresh, not a rebuild), so serving continues uninterrupted.
//!     Reports whether the whole drive was acknowledged durable (fsynced
//!     into the server's append journal before each ack).
//!
//! perfxplain load --addr HOST:PORT --left ID --right ID
//!                 [--connections N] [--requests N] [--query FILE.pxql]
//!                 [--query-text "..."] [--timeout-ms MS]
//!     Drive an open-loop workload against a running server: N concurrent
//!     connections each issuing back-to-back requests for the given pair,
//!     reporting qps, p50/p99 latency and how much load was shed.
//! ```
//!
//! The query file contains a PXQL query; if its `WHERE` clause uses `?`
//! placeholders the pair of interest must be supplied with `--left`/`--right`.

use perfxplain::prelude::*;
use perfxplain::{
    assess, generate_explanation, prepare_training_set, BoundQuery, ExecutionLog, QueryRequest,
    XplainService,
};
use std::collections::BTreeMap;
use std::process::exit;
use std::time::Instant;

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    exit(1);
}

/// Minimal `--flag value` / `--switch` argument parser.
struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Self {
        let mut values = BTreeMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let arg = &raw[i];
            if let Some(name) = arg.strip_prefix("--") {
                let takes_value = matches!(
                    name,
                    "preset"
                        | "seed"
                        | "out"
                        | "log"
                        | "query"
                        | "query-text"
                        | "queries"
                        | "left"
                        | "right"
                        | "width"
                        | "bundles"
                        | "shards"
                        | "snapshot"
                        | "addr"
                        | "workers"
                        | "budget"
                        | "queue"
                        | "session-inflight"
                        | "session-pending"
                        | "timeout-ms"
                        | "connections"
                        | "requests"
                        | "checkpoint"
                        | "fsync"
                        | "drain-ms"
                );
                if takes_value {
                    let value = raw.get(i + 1).unwrap_or_else(|| {
                        fail(&format!("--{name} expects a value"));
                    });
                    values.insert(name.to_string(), value.clone());
                    i += 1;
                } else {
                    switches.push(name.to_string());
                }
            } else {
                fail(&format!("unexpected argument '{arg}'"));
            }
            i += 1;
        }
        Args { values, switches }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn load_log(args: &Args) -> ExecutionLog {
    let path = args
        .get("log")
        .unwrap_or_else(|| fail("--log <file.json> is required"));
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    ExecutionLog::from_json(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
}

fn preset_from(args: &Args) -> LogPreset {
    match args.get("preset").unwrap_or("small") {
        "tiny" => LogPreset::Tiny,
        "small" => LogPreset::Small,
        "paper" => LogPreset::PaperGrid,
        other => fail(&format!(
            "unknown preset '{other}' (expected tiny|small|paper)"
        )),
    }
}

fn seed_from(args: &Args) -> u64 {
    args.get("seed")
        .map(|s| {
            s.parse()
                .unwrap_or_else(|_| fail("--seed expects a number"))
        })
        .unwrap_or(42)
}

fn cmd_simulate(args: &Args) {
    let preset = preset_from(args);
    let seed = seed_from(args);
    let out = args.get("out").unwrap_or("perfxplain-log.json");
    eprintln!("simulating the {preset:?} workload (seed {seed})...");
    let log = build_execution_log(preset, seed);
    let json = log.to_json().unwrap_or_else(|e| fail(&e.to_string()));
    std::fs::write(out, json).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    println!(
        "wrote {} jobs and {} tasks to {out}",
        log.jobs().count(),
        log.tasks().count()
    );
}

/// Formats a duration in milliseconds for the per-phase ingest report.
fn ms(seconds: f64) -> String {
    format!("{:.1} ms", seconds * 1e3)
}

/// Formats a byte count with a binary-prefix unit for the size report.
fn size(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Prints the on-disk byte accounting of a snapshot: bytes per block kind
/// and the overall compression ratio against the raw fixed-width (v1)
/// encoding of the same data.
fn report_snapshot_size(manifest: &perfxplain::SnapshotManifest) {
    let usage = manifest.usage();
    println!(
        "  size    : {:>10}  (records {}, job columns {}, task columns {}; {:.2}x vs raw)",
        size(usage.total_bytes),
        size(usage.records_bytes),
        size(usage.job_bytes),
        size(usage.task_bytes),
        usage.compression_ratio()
    );
}

fn shards_from(args: &Args) -> Option<usize> {
    args.get("shards").map(|raw| {
        raw.parse::<usize>()
            .ok()
            .filter(|&s| s >= 1)
            .unwrap_or_else(|| fail("--shards expects a positive number"))
    })
}

fn cmd_ingest(args: &Args) {
    let root = args
        .get("bundles")
        .unwrap_or_else(|| fail("--bundles <dir> is required"));
    let bundles = JobLogBundle::read_all(std::path::Path::new(root))
        .unwrap_or_else(|e| fail(&format!("cannot read bundles under {root}: {e}")));
    if bundles.is_empty() {
        fail(&format!("{root} contains no job log bundles"));
    }
    match args.get("snapshot") {
        Some(dir) => ingest_into_snapshot(args, &bundles, std::path::Path::new(dir)),
        None => ingest_to_json(args, &bundles),
    }
}

/// The legacy path: parse every bundle (sharded) and write the log as JSON.
fn ingest_to_json(args: &Args, bundles: &[JobLogBundle]) {
    let out = args.get("out").unwrap_or("perfxplain-log.json");
    let shards = shards_from(args).unwrap_or_else(perfxplain::shard::hardware_threads);
    eprintln!(
        "ingesting {} bundles across {shards} shard(s)...",
        bundles.len()
    );
    let parse_started = Instant::now();
    let log = collect_bundles_sharded(bundles, shards)
        .unwrap_or_else(|e| fail(&format!("cannot parse bundles: {e}")));
    let parse_secs = parse_started.elapsed().as_secs_f64();

    let persist_started = Instant::now();
    let json = log.to_json().unwrap_or_else(|e| fail(&e.to_string()));
    std::fs::write(out, json).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
    let persist_secs = persist_started.elapsed().as_secs_f64();

    println!(
        "  parse   : {:>10}  ({shards} shard(s) parsed)",
        ms(parse_secs)
    );
    println!("  persist : {:>10}  (JSON {out})", ms(persist_secs));
    println!(
        "ingested {} rows ({} jobs, {} tasks) into {out}",
        log.len(),
        log.jobs().count(),
        log.tasks().count()
    );
}

/// The snapshot path: fingerprint each shard of bundles, parse only the
/// shards the snapshot does not already hold, and re-encode only those.
fn ingest_into_snapshot(args: &Args, bundles: &[JobLogBundle], dir: &std::path::Path) {
    use perfxplain::snapshot::{self, RecordShard, ShardInput, SnapshotManifest, SyncReport};

    // Shard count: an explicit --shards wins; otherwise stick to the
    // existing snapshot's layout so fingerprints stay comparable; a fresh
    // directory defaults to one shard per core.
    let existing = match SnapshotManifest::load(dir) {
        Ok(manifest) => Some(manifest),
        // No manifest at all — a fresh directory, nothing to warn about.
        Err(perfxplain::CoreError::SnapshotIo { .. }) => None,
        // Version skew or corruption: the store exists but cannot be
        // reused incrementally.  Warn and fall back to a full re-ingest
        // over the same directory instead of dying.
        Err(err) => {
            eprintln!("warning: existing snapshot is unusable ({err}); re-ingesting everything");
            None
        }
    };
    let shards = shards_from(args)
        .or_else(|| existing.as_ref().map(|m| m.shards.len()))
        .unwrap_or_else(perfxplain::shard::hardware_threads)
        .max(1);
    let chunk_size = bundles.len().div_ceil(shards).max(1);
    let chunks: Vec<&[JobLogBundle]> = bundles.chunks(chunk_size).collect();
    let fingerprints: Vec<u64> = chunks
        .iter()
        .map(|chunk| snapshot::combine_fingerprints(chunk.iter().map(JobLogBundle::fingerprint)))
        .collect();

    // Decide per shard: reuse or parse.  A usable manifest must match the
    // chunk layout; otherwise everything is parsed fresh.
    let reusable = existing
        .as_ref()
        .map(|m| m.shards.len() == chunks.len())
        .unwrap_or(false);
    eprintln!(
        "ingesting {} bundles across {} shard(s) into snapshot {}...",
        bundles.len(),
        chunks.len(),
        dir.display()
    );

    let parse_started = Instant::now();
    // Parses the dirty shards across threads (one chunk per worker, like
    // `collect_bundles_sharded`) and interleaves the results with the
    // clean shards' reuse claims.  `damaged` adds shard indices that must
    // be re-parsed regardless of their source fingerprint (the salvage
    // path: their on-disk segments are quarantined).
    let build_inputs =
        |parse_all: bool, damaged: &[usize]| -> Result<(Vec<ShardInput>, usize), String> {
            let dirty: Vec<usize> = (0..chunks.len())
                .filter(|&i| {
                    parse_all
                        || !reusable
                        || damaged.contains(&i)
                        || existing.as_ref().unwrap().shards[i].source_fingerprint
                            != Some(fingerprints[i])
                })
                .collect();
            type ParsedShard = (usize, Vec<perfxplain::ExecutionRecord>);
            let parsed: Result<Vec<Vec<ParsedShard>>, String> = perfxplain::shard::map_chunks(
                &dirty,
                perfxplain::shard::hardware_threads().min(dirty.len().max(1)),
                |group| {
                    group
                        .iter()
                        .map(|&i| {
                            perfxplain::prelude::collect_bundles(chunks[i])
                                .map(|log| (i, log.records().to_vec()))
                                .map_err(|e| e.to_string())
                        })
                        .collect()
                },
            )
            .into_iter()
            .collect();
            let mut parsed: BTreeMap<usize, Vec<perfxplain::ExecutionRecord>> =
                parsed?.into_iter().flatten().collect();
            let inputs = (0..chunks.len())
                .map(|i| match parsed.remove(&i) {
                    Some(records) => ShardInput::Fresh(RecordShard {
                        records,
                        source_fingerprint: Some(fingerprints[i]),
                    }),
                    None => ShardInput::Unchanged {
                        source_fingerprint: fingerprints[i],
                    },
                })
                .collect();
            Ok((inputs, dirty.len()))
        };

    // Full (non-incremental) write: every input is Fresh by construction.
    let persist_all = |inputs: Vec<ShardInput>| -> SyncReport {
        let shards: Vec<RecordShard> = inputs
            .into_iter()
            .map(|input| match input {
                ShardInput::Fresh(shard) => shard,
                ShardInput::Unchanged { .. } | ShardInput::Keep => {
                    unreachable!("full parse is all fresh")
                }
            })
            .collect();
        snapshot::persist_shards(dir, shards).unwrap_or_else(|e| fail(&e.to_string()))
    };

    let (inputs, mut shards_parsed) = build_inputs(!reusable, &[])
        .unwrap_or_else(|e| fail(&format!("cannot parse bundles: {e}")));
    let mut parse_secs = parse_started.elapsed().as_secs_f64();

    // Re-parses and re-syncs after a failure, parsing the union of the
    // fingerprint-dirty shards and `damaged`; `parse_all` rebuilds from
    // scratch.  Returns None when the retried sync also fails.
    let resync = |parse_all: bool,
                  damaged: &[usize],
                  shards_parsed: &mut usize,
                  parse_secs: &mut f64|
     -> Option<SyncReport> {
        let reparse_started = Instant::now();
        let (inputs, parsed) = build_inputs(parse_all, damaged)
            .unwrap_or_else(|e| fail(&format!("cannot parse bundles: {e}")));
        *shards_parsed = parsed;
        *parse_secs += reparse_started.elapsed().as_secs_f64();
        if parse_all {
            Some(persist_all(inputs))
        } else {
            snapshot::sync(dir, inputs).ok()
        }
    };

    let report: SyncReport = if reusable {
        match snapshot::sync(dir, inputs) {
            Ok(report) => report,
            Err(err) => {
                // Recovery is layered (see perfxplain::snapshot): salvage
                // the store first — quarantine the damaged segments and
                // re-parse *only* the shards they covered — and fall back
                // to a full re-ingest over the same directory only when
                // even salvage cannot tell which shards are healthy.
                let salvaged = snapshot::open_salvage(dir)
                    .ok()
                    .filter(|partial| !partial.damaged_indices().is_empty())
                    .and_then(|partial| {
                        let damaged = partial.damaged_indices();
                        eprintln!(
                            "warning: incremental sync failed ({err}); quarantined {} damaged \
                             shard(s), re-encoding only those",
                            damaged.len()
                        );
                        drop(partial);
                        resync(false, &damaged, &mut shards_parsed, &mut parse_secs)
                    });
                match salvaged {
                    Some(report) => report,
                    None => {
                        eprintln!(
                            "warning: incremental sync failed ({err}); re-ingesting everything"
                        );
                        resync(true, &[], &mut shards_parsed, &mut parse_secs)
                            .expect("full persist cannot fail to sync")
                    }
                }
            }
        }
    } else {
        persist_all(inputs)
    };

    println!(
        "  parse   : {:>10}  ({shards_parsed} shard(s) parsed, {} clean skipped)",
        ms(parse_secs),
        chunks.len() - shards_parsed
    );
    println!(
        "  encode  : {:>10}  ({} segment(s) re-encoded{})",
        ms(report.encode_seconds),
        report.shards_encoded,
        if report.catalog_changed {
            ", catalog changed"
        } else {
            ""
        }
    );
    println!(
        "  persist : {:>10}  (snapshot {}, {} shard(s))",
        ms(report.write_seconds),
        dir.display(),
        report.manifest.shards.len()
    );
    report_snapshot_size(&report.manifest);
    println!(
        "ingested {} rows: {} shard(s) re-encoded, {} served from disk",
        report.rows, report.shards_encoded, report.shards_reused
    );

    // An explicit --out alongside --snapshot also writes the JSON form.
    if let Some(out) = args.get("out") {
        let log = snapshot::open(dir)
            .unwrap_or_else(|e| fail(&e.to_string()))
            .to_log();
        let json = log.to_json().unwrap_or_else(|e| fail(&e.to_string()));
        std::fs::write(out, json).unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        println!("also wrote the JSON form to {out}");
    }
}

/// `snapshot save` / `snapshot open`.
fn cmd_snapshot(action: &str, args: &Args) {
    use perfxplain::{snapshot, ExecutionKind};

    let dir = args
        .get("snapshot")
        .map(std::path::Path::new)
        .unwrap_or_else(|| fail("--snapshot <dir> is required"));
    match action {
        "save" => {
            let log = load_log(args);
            let shards = shards_from(args).unwrap_or_else(perfxplain::shard::hardware_threads);
            let report =
                snapshot::persist(&log, dir, shards).unwrap_or_else(|e| fail(&e.to_string()));
            println!(
                "  encode  : {:>10}  ({} segment(s))",
                ms(report.encode_seconds),
                report.shards_encoded
            );
            println!(
                "  persist : {:>10}  (snapshot {})",
                ms(report.write_seconds),
                dir.display()
            );
            report_snapshot_size(&report.manifest);
            println!(
                "saved {} rows as {} shard(s) under {}",
                report.rows,
                report.manifest.shards.len(),
                dir.display()
            );
        }
        "open" => {
            let open_started = Instant::now();
            let snap = snapshot::open(dir).unwrap_or_else(|e| fail(&e.to_string()));
            let open_secs = open_started.elapsed().as_secs_f64();
            let shard_count = snap.shards().len();
            let usage_manifest = snap.manifest().clone();

            let assemble_started = Instant::now();
            let perfxplain::SnapshotViews {
                mut log,
                job: job_view,
                task: task_view,
            } = snap.into_views();
            let assemble_secs = assemble_started.elapsed().as_secs_f64();

            // Replay the append journal, if one is present: acked batches
            // the last checkpoint missed belong to the log the user asked
            // to open.  Frames carry the log position they were acked at,
            // so already-checkpointed frames skip and a positional gap
            // stops the replay conservatively — the same contract as the
            // service's restart path.
            let replay = snapshot::read_journal(dir).unwrap_or_else(|e| fail(&e.to_string()));
            let mut replayed_rows = 0usize;
            for batch in replay.batches {
                let start = batch.start_rows as usize;
                let count = batch.records.len();
                if start.saturating_add(count) <= log.len() {
                    continue;
                }
                if start != log.len() {
                    break;
                }
                log.append(batch.records);
                replayed_rows += count;
            }

            println!(
                "  open    : {:>10}  ({} shard(s), fingerprints verified)",
                ms(open_secs),
                shard_count
            );
            println!(
                "  views   : {:>10}  (columns adopted from the decoded segments, no copy)",
                ms(assemble_secs)
            );
            if replayed_rows > 0 {
                println!(
                    "  journal : {} acked row(s) replayed past the last checkpoint{}",
                    replayed_rows,
                    if replay.frames_truncated > 0 {
                        " (torn tail truncated)"
                    } else {
                        ""
                    }
                );
            }
            report_snapshot_size(&usage_manifest);
            // Per-kind counts come from the replayed log, not the decoded
            // views — journal rows are part of the opened log even though
            // the snapshot's cached views predate them.
            debug_assert!(job_view.num_rows() <= log.rows_of_kind(ExecutionKind::Job));
            debug_assert!(task_view.num_rows() <= log.rows_of_kind(ExecutionKind::Task));
            println!(
                "opened {} rows ({} jobs / {} job features, {} tasks / {} task features)",
                log.len(),
                log.rows_of_kind(ExecutionKind::Job),
                log.job_catalog().len(),
                log.rows_of_kind(ExecutionKind::Task),
                log.task_catalog().len()
            );
            if let Some(out) = args.get("out") {
                let json = log.to_json().unwrap_or_else(|e| fail(&e.to_string()));
                std::fs::write(out, json)
                    .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
                println!("wrote the JSON form to {out}");
            }
        }
        "verify" => {
            let verify_started = Instant::now();
            let health = snapshot::verify(dir).unwrap_or_else(|e| fail(&e.to_string()));
            let verify_secs = verify_started.elapsed().as_secs_f64();
            let mut damaged = 0usize;
            for shard in &health {
                match &shard.error {
                    None => println!(
                        "  shard {:>3}: ok       {} ({} rows)",
                        shard.index, shard.file, shard.rows
                    ),
                    Some(err) => {
                        damaged += 1;
                        println!(
                            "  shard {:>3}: DAMAGED  {} ({err})",
                            shard.index, shard.file
                        );
                    }
                }
            }
            // The append journal rides along in the same directory; audit
            // its frame checksums too (read-only — truncation of a torn
            // tail happens only on a real open).
            let journal = perfxplain::verify_journal(dir).unwrap_or_else(|e| fail(&e.to_string()));
            let journal_damaged = !journal.is_healthy();
            if journal.present {
                match &journal.damage {
                    None => println!(
                        "  journal  : ok       {} byte(s), {} frame(s), {} record(s)",
                        journal.bytes, journal.frames, journal.records
                    ),
                    Some(damage) => println!(
                        "  journal  : DAMAGED  {} clean frame(s) then: {damage}",
                        journal.frames
                    ),
                }
            } else {
                println!("  journal  : absent   (snapshot runs unjournaled)");
            }
            println!(
                "  verify  : {:>10}  ({} shard(s), fingerprints checked, no views built)",
                ms(verify_secs),
                health.len()
            );
            if damaged > 0 || journal_damaged {
                if damaged > 0 {
                    eprintln!(
                        "{damaged} of {} shard(s) damaged; a salvage open would quarantine them",
                        health.len()
                    );
                }
                if journal_damaged {
                    eprintln!(
                        "the append journal is damaged; an open would truncate it to the last \
                         clean frame"
                    );
                }
                exit(1);
            }
            println!("all {} shard(s) healthy", health.len());
        }
        other => fail(&format!(
            "unknown snapshot action '{other}' (save|open|verify)"
        )),
    }
}

fn cmd_inspect(args: &Args) {
    let log = load_log(args);
    let durations: Vec<f64> = log.jobs().filter_map(|j| j.duration()).collect();
    let mean = if durations.is_empty() {
        0.0
    } else {
        durations.iter().sum::<f64>() / durations.len() as f64
    };
    println!("jobs          : {}", log.jobs().count());
    println!("tasks         : {}", log.tasks().count());
    println!("job features  : {}", log.job_catalog().len());
    println!("task features : {}", log.task_catalog().len());
    println!("mean job time : {mean:.1} s");
    let mut scripts: BTreeMap<String, usize> = BTreeMap::new();
    for job in log.jobs() {
        let script = job
            .feature("pigscript")
            .as_str()
            .unwrap_or("unknown")
            .to_string();
        *scripts.entry(script).or_default() += 1;
    }
    for (script, count) in scripts {
        println!("  {script}: {count} jobs");
    }
}

fn cmd_queries(args: &Args) {
    let log = load_log(args);
    match why_slower_despite_same_num_instances(&log) {
        Some(binding) => println!(
            "{}:\n{}\n",
            binding.name,
            binding.bound.query.clone().with_pair(
                binding.bound.left_id.clone(),
                binding.bound.right_id.clone()
            )
        ),
        None => {
            println!("WhySlowerDespiteSameNumInstances: no suitable pair of jobs in this log\n")
        }
    }
    match why_last_task_faster(&log) {
        Some(binding) => println!(
            "{}:\n{}",
            binding.name,
            binding.bound.query.clone().with_pair(
                binding.bound.left_id.clone(),
                binding.bound.right_id.clone()
            )
        ),
        None => println!("WhyLastTaskFaster: no suitable pair of tasks in this log"),
    }
}

fn config_from(args: &Args) -> ExplainConfig {
    let mut config = ExplainConfig::default();
    if let Some(width) = args.get("width") {
        config.width = width
            .parse()
            .unwrap_or_else(|_| fail("--width expects a number"));
    }
    config
}

fn cmd_explain(args: &Args) {
    let log = load_log(args);
    let query_text = if let Some(path) = args.get("query") {
        std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read query file {path}: {e}")))
    } else if let Some(text) = args.get("query-text") {
        text.to_string()
    } else {
        fail("--query <file> or --query-text \"...\" is required");
    };

    // The query is parsed here only so that `--compare` can rebuild the
    // user's *original* bound query later; the service call itself replaces
    // the old parse → bind → explain → assess → narrate choreography.
    let parsed = parse_query(&query_text).unwrap_or_else(|e| fail(&format!("invalid PXQL: {e}")));
    let config = config_from(args);
    let mut request = QueryRequest::parsed(parsed.clone()).with_assessment();
    if let (Some(left), Some(right)) = (args.get("left"), args.get("right")) {
        request = request.with_pair(left, right);
    } else if matches!(parsed.left_binding, pxql::PairBinding::Placeholder)
        || matches!(parsed.right_binding, pxql::PairBinding::Placeholder)
    {
        fail("the query uses '?' placeholders; pass --left and --right");
    }
    if args.has("auto-despite") {
        request = request.with_despite_extension();
    }
    if args.has("narrate") {
        request = request.with_narration();
    }

    let service = XplainService::with_config(log, config.clone());
    let outcome = service
        .explain(&request)
        .unwrap_or_else(|e| fail(&e.to_string()));

    println!("{}\n", outcome.explanation);
    if let Some(narration) = &outcome.narration {
        println!("{narration}\n");
    }
    let quality = outcome.quality.expect("assessment was requested");
    println!(
        "quality over the related pairs: precision {:.2}, generality {:.2}, relevance {:.2}",
        quality.precision.unwrap_or(f64::NAN),
        quality.generality.unwrap_or(f64::NAN),
        quality.relevance.unwrap_or(f64::NAN)
    );

    if args.has("compare") {
        // Baselines answer the user's original query (not the
        // despite-extended one), scored over its related pairs; the pair of
        // interest is the one the service resolved.
        let bound = BoundQuery::new(
            parsed,
            outcome.query.left_id.clone(),
            outcome.query.right_id.clone(),
        );
        service.with_log(|log| {
            let related =
                prepare_training_set(log, &bound, &config).unwrap_or_else(|e| fail(&e.to_string()));
            println!("\nbaselines:");
            for technique in [Technique::RuleOfThumb, Technique::SimButDiff] {
                match generate_explanation(technique, log, &bound, &config) {
                    Ok(explanation) => {
                        let quality = assess(&related, &explanation);
                        println!(
                            "  {technique:<12} precision {:.2}, generality {:.2}  ({})",
                            quality.precision.unwrap_or(f64::NAN),
                            quality.generality.unwrap_or(f64::NAN),
                            explanation.because
                        );
                    }
                    Err(err) => println!("  {technique:<12} failed: {err}"),
                }
            }
        });
    }
}

/// Answers a file of PXQL queries through one long-lived service, printing
/// per-query timing so the columnar-view reuse is visible.
fn cmd_batch(args: &Args) {
    let log = load_log(args);
    let path = args
        .get("queries")
        .unwrap_or_else(|| fail("--queries <file.pxqlb> is required"));
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read query file {path}: {e}")));

    let mut requests: Vec<(usize, QueryRequest)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut request = QueryRequest::text(line);
        if args.has("auto-despite") {
            request = request.with_despite_extension();
        }
        if args.has("narrate") {
            request = request.with_narration();
        }
        requests.push((lineno + 1, request));
    }
    if requests.is_empty() {
        fail(&format!("{path} contains no queries"));
    }

    let service = XplainService::with_config(log, config_from(args));
    println!(
        "answering {} queries over {} executions...\n",
        requests.len(),
        service.with_log(|log| log.len())
    );

    let mut reused = 0usize;
    let started = Instant::now();
    if args.has("par") {
        let batch: Vec<QueryRequest> = requests.iter().map(|(_, r)| r.clone()).collect();
        let outcomes = service.par_explain_batch(&batch);
        let elapsed = started.elapsed();
        for ((lineno, _), outcome) in requests.iter().zip(outcomes) {
            reused += print_batch_outcome(*lineno, &outcome, None);
        }
        println!(
            "\n{} queries in {:.1} ms across threads ({} answered from the cached view)",
            requests.len(),
            elapsed.as_secs_f64() * 1e3,
            reused
        );
    } else {
        for (lineno, request) in &requests {
            let query_started = Instant::now();
            let outcome = service.explain(request);
            reused += print_batch_outcome(*lineno, &outcome, Some(query_started.elapsed()));
        }
        println!(
            "\n{} queries in {:.1} ms ({} answered from the cached view)",
            requests.len(),
            started.elapsed().as_secs_f64() * 1e3,
            reused
        );
    }
}

/// Prints one batch result line; returns 1 when the cached view was reused.
fn print_batch_outcome(
    lineno: usize,
    outcome: &Result<perfxplain::QueryOutcome, perfxplain::CoreError>,
    elapsed: Option<std::time::Duration>,
) -> usize {
    let timing = elapsed
        .map(|e| format!("{:>8.2} ms  ", e.as_secs_f64() * 1e3))
        .unwrap_or_default();
    match outcome {
        Ok(outcome) => {
            let origin = if outcome.view_reused {
                "cached view"
            } else {
                "view built"
            };
            println!(
                "line {lineno:>4}: {timing}[{origin}] {} vs {}: {}",
                outcome.query.left_id, outcome.query.right_id, outcome.explanation.because
            );
            if let Some(narration) = &outcome.narration {
                println!("            {narration}");
            }
            usize::from(outcome.view_reused)
        }
        Err(err) => {
            println!("line {lineno:>4}: {timing}failed: {err}");
            0
        }
    }
}

/// Parses a numeric flag, failing with a consistent message.
fn numeric_flag<T: std::str::FromStr>(args: &Args, name: &str) -> Option<T> {
    args.get(name).map(|raw| {
        raw.parse::<T>()
            .unwrap_or_else(|_| fail(&format!("--{name} expects a number")))
    })
}

/// Set by the SIGINT/SIGTERM handler; polled by the serve loop.
static SHUTDOWN_REQUESTED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Minimal async-signal-safe handler: one relaxed store, nothing else.
extern "C" fn on_shutdown_signal(_signum: i32) {
    SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// Routes SIGINT and SIGTERM to [`on_shutdown_signal`] via libc's `signal`,
/// so `Ctrl-C` and `kill` drain the server instead of dropping in-flight
/// work.  Best-effort: on failure the process just keeps the default
/// (immediate-exit) disposition, which the journal already tolerates.
fn install_shutdown_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_shutdown_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// Serves the log over the network protocol until killed or drained.
fn cmd_serve(args: &Args) {
    use perfxplain::server::{spawn, QueryCost, SchedulerConfig, ServerConfig};
    use perfxplain::{CoreError, FsyncPolicy};
    use std::sync::Arc;

    let explain_config = config_from(args);
    let service = match (args.get("snapshot"), args.get("log")) {
        (Some(dir), _) => {
            let path = std::path::Path::new(dir);
            match XplainService::open_snapshot_with_config(path, explain_config.clone()) {
                Ok(service) => service,
                // Serve what survives rather than refusing to start: the
                // salvage open quarantines damaged segments and builds the
                // service from the healthy shards.
                Err(err) => {
                    eprintln!("warning: cannot open snapshot {dir} strictly ({err}); salvaging");
                    let (service, damage) =
                        XplainService::open_snapshot_salvage_with_config(path, explain_config)
                            .unwrap_or_else(|e| {
                                fail(&format!("cannot salvage snapshot {dir}: {e}"))
                            });
                    for shard in &damage {
                        eprintln!(
                            "warning: quarantined shard {} ({}): {}",
                            shard.index, shard.file, shard.error
                        );
                    }
                    eprintln!(
                        "warning: serving without {} damaged shard(s); re-ingest to repair",
                        damage.len()
                    );
                    service
                }
            }
        }
        (None, Some(_)) => XplainService::with_config(load_log(args), explain_config),
        (None, None) => fail("--log <file.json> or --snapshot <dir> is required"),
    };

    let defaults = SchedulerConfig::default();
    let scheduler = SchedulerConfig {
        budget: numeric_flag(args, "budget")
            .map(QueryCost)
            .unwrap_or(defaults.budget),
        queue_capacity: numeric_flag(args, "queue").unwrap_or(defaults.queue_capacity),
        max_inflight_per_session: numeric_flag(args, "session-inflight")
            .unwrap_or(defaults.max_inflight_per_session),
        max_pending_per_session: numeric_flag(args, "session-pending")
            .unwrap_or(defaults.max_pending_per_session),
    };
    let mut config = ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7433").to_string(),
        scheduler,
        ..ServerConfig::default()
    };
    if let Some(workers) = numeric_flag::<usize>(args, "workers") {
        config.workers = workers.max(1);
    }
    if let Some(timeout_ms) = numeric_flag::<u64>(args, "timeout-ms") {
        config.default_timeout =
            (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms));
    }
    if let Some(drain_ms) = numeric_flag::<u64>(args, "drain-ms") {
        config.drain_timeout = std::time::Duration::from_millis(drain_ms);
    }
    // Off by default: the shutdown admin frame is otherwise a remote
    // denial-of-service on a query/append-only protocol.
    config.allow_remote_shutdown = args.has("allow-remote-shutdown");

    let rows = service.with_log(|log| log.len());
    let checkpoint_dir = args.get("checkpoint").map(std::path::PathBuf::from);
    let fsync_policy = args.get("fsync").map(|raw| {
        raw.parse::<FsyncPolicy>()
            .unwrap_or_else(|e| fail(&format!("--fsync: {e}")))
    });
    if let Some(policy) = fsync_policy {
        let dir = checkpoint_dir.as_deref().unwrap_or_else(|| {
            fail("--fsync requires --checkpoint <dir> (the journal lives there)")
        });
        // The journal needs checkpoint lineage in its directory: a strict
        // snapshot open from the same dir already has it, a salvage open
        // or a --log start does not — establish it with one checkpoint.
        if let Err(err) = service.enable_journal(dir, policy) {
            match err {
                CoreError::JournalNotAnchored { .. } => {
                    let report = service
                        .checkpoint(dir)
                        .unwrap_or_else(|e| fail(&format!("cannot anchor the journal: {e}")));
                    println!(
                        "checkpointed {} rows to {} to anchor the append journal",
                        report.rows,
                        dir.display()
                    );
                    service
                        .enable_journal(dir, policy)
                        .unwrap_or_else(|e| fail(&format!("cannot enable the journal: {e}")));
                }
                other => fail(&format!("cannot enable the journal: {other}")),
            }
        }
        println!(
            "append journal enabled in {} (fsync policy: {policy})",
            dir.display()
        );
    }
    install_shutdown_handler();
    let service = Arc::new(service);
    let handle =
        spawn(Arc::clone(&service), config.clone()).unwrap_or_else(|e| fail(&e.to_string()));
    println!(
        "serving {rows} executions on {} ({} worker(s), budget {} unit(s), queue {}, \
         per-session {} running / {} pending)",
        handle.addr(),
        config.workers,
        config.scheduler.budget.units(),
        config.scheduler.queue_capacity,
        config.scheduler.max_inflight_per_session,
        config.scheduler.max_pending_per_session,
    );
    // The handle owns the event loop; park this thread polling for a
    // shutdown signal (or a `shutdown` admin frame, which finishes the
    // event loop on its own), reporting counters every ten seconds so
    // operators see the shape of the load, and checkpointing the live tail
    // when appends landed.
    let mut last = handle.stats();
    let mut checkpointed_generation = service.generation();
    let report_every = std::time::Duration::from_secs(10);
    let mut next_report = Instant::now() + report_every;
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        if SHUTDOWN_REQUESTED.load(std::sync::atomic::Ordering::Relaxed) || handle.is_finished() {
            break;
        }
        if Instant::now() < next_report {
            continue;
        }
        next_report = Instant::now() + report_every;
        let stats = handle.stats();
        if stats != last {
            println!(
                "sessions {}  requests {}  answered {}  appends {}  shed {}  expired {}  errors {}",
                stats.sessions_accepted,
                stats.requests,
                stats.answered,
                stats.appends,
                stats.shed,
                stats.expired,
                stats.errors
            );
            last = stats;
        }
        if let Some(dir) = &checkpoint_dir {
            let generation = service.generation();
            if generation != checkpointed_generation {
                match service.checkpoint(dir) {
                    Ok(report) => {
                        checkpointed_generation = generation;
                        println!(
                            "checkpointed {} rows to {} ({} shard(s) encoded, {} kept)",
                            report.rows,
                            dir.display(),
                            report.shards_encoded,
                            report.shards_reused
                        );
                    }
                    Err(err) => eprintln!("warning: checkpoint to {} failed: {err}", dir.display()),
                }
            }
        }
    }

    // Graceful exit: stop accepting, let in-flight and queued requests
    // finish within the drain deadline, then make the served state durable
    // — one final checkpoint if anything was appended, and a journal fsync
    // so even an OnCheckpoint policy leaves no unsynced frames behind.
    println!(
        "shutting down: draining in-flight requests (up to {} ms)...",
        config.drain_timeout.as_millis()
    );
    let stats = handle.drain();
    println!(
        "drained; final counters: sessions {}  requests {}  answered {}  appends {}  \
         shed {}  expired {}  errors {}",
        stats.sessions_accepted,
        stats.requests,
        stats.answered,
        stats.appends,
        stats.shed,
        stats.expired,
        stats.errors
    );
    if let Some(dir) = &checkpoint_dir {
        if service.generation() != checkpointed_generation {
            match service.checkpoint(dir) {
                Ok(report) => println!(
                    "final checkpoint: {} rows to {} ({} shard(s) encoded, {} kept)",
                    report.rows,
                    dir.display(),
                    report.shards_encoded,
                    report.shards_reused
                ),
                Err(err) => eprintln!(
                    "warning: final checkpoint to {} failed: {err}",
                    dir.display()
                ),
            }
        }
    }
    match service.sync_journal() {
        Ok(()) => {
            if let Some(stats) = service.journal_stats() {
                println!(
                    "journal synced: {} bytes, {} frame(s) appended, {} fsync(s)",
                    stats.bytes, stats.frames_appended, stats.fsyncs
                );
            }
        }
        Err(err) => eprintln!("warning: final journal sync failed: {err}"),
    }
}

/// Appends the records of a JSON execution log to a running server.
fn cmd_append(args: &Args) {
    use perfxplain::server::{Client, ServerConfig};

    let addr = args
        .get("addr")
        .unwrap_or_else(|| fail("--addr HOST:PORT is required"));
    let log = load_log(args);
    if log.is_empty() {
        fail("the records file contains no executions");
    }
    let mut client =
        Client::connect(addr).unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));
    let started = Instant::now();
    // Batch to the server's frame cap: a multi-megabyte log streams as
    // many append requests over the one connection instead of one
    // oversized frame the server would reject.
    let ack = client
        .append_batched(log.records(), ServerConfig::default().max_frame_bytes)
        .unwrap_or_else(|e| fail(&format!("append failed: {e}")));
    println!(
        "appended {} record(s) in {:.1} ms; served log is now at generation {} ({})",
        ack.appended,
        started.elapsed().as_secs_f64() * 1e3,
        ack.generation,
        if ack.durable {
            "durable: every batch fsynced to the server's journal before its ack"
        } else {
            "not durable: the server journals lazily or not at all"
        }
    );
}

/// Drives an open-loop many-client workload against a running server.
fn cmd_load(args: &Args) {
    use perfxplain::server::{run_load, WireRequest};

    let addr = args
        .get("addr")
        .unwrap_or_else(|| fail("--addr HOST:PORT is required"));
    let (left, right) = match (args.get("left"), args.get("right")) {
        (Some(left), Some(right)) => (left.to_string(), right.to_string()),
        _ => fail("--left and --right execution ids are required"),
    };
    let connections: usize = numeric_flag(args, "connections").unwrap_or(4);
    let requests: usize = numeric_flag(args, "requests").unwrap_or(16);
    let timeout_ms: Option<u64> = numeric_flag(args, "timeout-ms");
    let query_text = if let Some(path) = args.get("query") {
        Some(
            std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read query file {path}: {e}"))),
        )
    } else {
        args.get("query-text").map(str::to_string)
    };

    println!(
        "driving {connections} connection(s) x {requests} request(s) against {addr} \
         for pair {left} vs {right}..."
    );
    let report = run_load(addr, connections, requests, |connection, sequence| {
        let mut request: WireRequest = perfxplain::server::default_request(&left, &right);
        if let Some(text) = &query_text {
            request.query = Some(text.clone());
        }
        request.id = Some((connection * requests + sequence) as u64);
        request.timeout_ms = timeout_ms;
        request
    })
    .unwrap_or_else(|e| fail(&format!("load drive failed: {e}")));

    println!(
        "sent {}  ok {}  shed {}  deadline {}  errors {}  transport {}",
        report.sent,
        report.ok,
        report.shed,
        report.deadline,
        report.errors,
        report.transport_errors
    );
    println!(
        "{:.1} qps over {:.1} ms; latency p50 {:.2} ms, p99 {:.2} ms",
        report.qps,
        report.elapsed.as_secs_f64() * 1e3,
        report.p50_ms,
        report.p99_ms
    );
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    const USAGE: &str =
        "usage: perfxplain <simulate|ingest|snapshot|inspect|queries|explain|batch|serve|append|load> [options]";
    let Some((command, rest)) = raw.split_first() else {
        eprintln!("{USAGE}");
        eprintln!("       see the module documentation at the top of src/bin/perfxplain.rs");
        exit(2);
    };
    match command.as_str() {
        "simulate" => cmd_simulate(&Args::parse(rest)),
        "ingest" => cmd_ingest(&Args::parse(rest)),
        "snapshot" => {
            let Some((action, rest)) = rest.split_first() else {
                fail("usage: perfxplain snapshot <save|open|verify> [options]");
            };
            cmd_snapshot(action, &Args::parse(rest));
        }
        "inspect" => cmd_inspect(&Args::parse(rest)),
        "queries" => cmd_queries(&Args::parse(rest)),
        "explain" => cmd_explain(&Args::parse(rest)),
        "batch" => cmd_batch(&Args::parse(rest)),
        "serve" => cmd_serve(&Args::parse(rest)),
        "append" => cmd_append(&Args::parse(rest)),
        "load" => cmd_load(&Args::parse(rest)),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
        }
        other => fail(&format!("unknown command '{other}'")),
    }
}
